//===- swp/service/ResultCache.h - Memoized scheduling results --*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, mutex-protected, capacity-bounded LRU map from job
/// fingerprints to finished SchedulerResults.  Sharding keeps lock
/// contention negligible when many worker threads look up concurrently;
/// the solver is deterministic, so a first-insert-wins policy on duplicate
/// keys returns results identical to a cold solve.
///
/// Every shard holds at most PerShardCapacity entries: inserting into a
/// full shard evicts the least-recently-used entry (lookups refresh
/// recency), so a long-lived daemon's cache cannot grow without bound.
/// Evictions are counted for ServiceStats.
///
/// The cache can be shared across SchedulerService instances (the swpd
/// daemon keys services by machine but pools their memoization), and its
/// contents can be snapshotted to disk and restored by swp/service's
/// CachePersist layer — restore() is the loader's entry point, bypassing
/// the fault-injection gating that guards live inserts.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SERVICE_RESULTCACHE_H
#define SWP_SERVICE_RESULTCACHE_H

#include "swp/core/Driver.h"
#include "swp/service/Fingerprint.h"

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace swp {

/// Thread-safe fingerprint -> SchedulerResult LRU cache.
class ResultCache {
public:
  /// Default per-shard bound: 16 shards x 4096 entries; at most ~65k
  /// memoized results before eviction starts.
  static constexpr std::size_t DefaultPerShardCapacity = 4096;

  explicit ResultCache(std::size_t NumShards = 16,
                       std::size_t PerShardCapacity = DefaultPerShardCapacity);

  /// \returns true and writes \p Out when \p Key is cached; a hit moves
  /// the entry to most-recently-used.
  bool lookup(const Fingerprint &Key, SchedulerResult &Out) const;

  /// Inserts \p Value under \p Key; the first insert wins on a duplicate
  /// key (concurrent solvers of identical jobs produce equal results).
  /// A full shard evicts its least-recently-used entry.
  void insert(const Fingerprint &Key, const SchedulerResult &Value);

  /// Loader path (snapshot restore): same first-insert-wins/eviction
  /// semantics as insert() but without the fault-injection gating — the
  /// persistence layer has already checksummed what it restores.
  void restore(const Fingerprint &Key, const SchedulerResult &Value);

  /// Number of cached entries (racy under concurrent inserts; exact when
  /// quiescent).
  std::size_t size() const;

  /// Entries evicted by capacity pressure since construction.
  std::uint64_t evictions() const;

  std::size_t numShards() const { return Shards.size(); }
  std::size_t perShardCapacity() const { return Capacity; }

  /// Copies shard \p S's entries, least-recently-used first (so replaying
  /// them through restore() reproduces the recency order).  Snapshot
  /// writers iterate shards to keep each lock hold short.
  std::vector<std::pair<Fingerprint, SchedulerResult>>
  shardEntries(std::size_t S) const;

  void clear();

private:
  struct Shard {
    mutable std::mutex Mutex;
    /// MRU at front, LRU at back.
    std::list<std::pair<Fingerprint, SchedulerResult>> Items;
    std::unordered_map<Fingerprint, decltype(Items)::iterator,
                       FingerprintHasher>
        Map;
    std::uint64_t Evictions = 0;
  };

  void insertLocked(Shard &S, const Fingerprint &Key,
                    const SchedulerResult &Value);

  Shard &shardFor(const Fingerprint &Key) const {
    return *Shards[static_cast<std::size_t>(FingerprintHasher()(Key)) %
                   Shards.size()];
  }

  std::vector<std::unique_ptr<Shard>> Shards;
  std::size_t Capacity;
};

} // namespace swp

#endif // SWP_SERVICE_RESULTCACHE_H
