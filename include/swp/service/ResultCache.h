//===- swp/service/ResultCache.h - Memoized scheduling results --*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, mutex-protected map from job fingerprints to finished
/// SchedulerResults.  Sharding keeps lock contention negligible when many
/// worker threads look up concurrently; the solver is deterministic, so a
/// first-insert-wins policy on duplicate keys returns results identical to
/// a cold solve.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SERVICE_RESULTCACHE_H
#define SWP_SERVICE_RESULTCACHE_H

#include "swp/core/Driver.h"
#include "swp/service/Fingerprint.h"

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace swp {

/// Thread-safe fingerprint -> SchedulerResult cache.
class ResultCache {
public:
  explicit ResultCache(std::size_t NumShards = 16);

  /// \returns true and writes \p Out when \p Key is cached.
  bool lookup(const Fingerprint &Key, SchedulerResult &Out) const;

  /// Inserts \p Value under \p Key; the first insert wins on a duplicate
  /// key (concurrent solvers of identical jobs produce equal results).
  void insert(const Fingerprint &Key, const SchedulerResult &Value);

  /// Number of cached entries (racy under concurrent inserts; exact when
  /// quiescent).
  std::size_t size() const;

  void clear();

private:
  struct Shard {
    mutable std::mutex Mutex;
    std::unordered_map<Fingerprint, SchedulerResult, FingerprintHasher> Map;
  };

  Shard &shardFor(const Fingerprint &Key) const {
    return *Shards[static_cast<std::size_t>(FingerprintHasher()(Key)) %
                   Shards.size()];
  }

  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace swp

#endif // SWP_SERVICE_RESULTCACHE_H
