//===- swp/service/Admission.h - Admission control & shedding ---*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Admission control in front of the SchedulerService: a bounded in-flight
/// budget with graceful degradation instead of a cliff.  As concurrent
/// load climbs through the thresholds, requests are first solved at
/// reduced exact-engine effort, then answered by the heuristic ladder
/// alone (slack-modulo -> iterative-modulo, still verified), and only when
/// the queue is truly full are they shed — with an explicit Shed response
/// naming the reason, never a hang or a silent drop.
///
///     in-flight < ReducedEffortAt   -> full effort
///     in-flight < HeuristicOnlyAt   -> reduced exact effort
///     in-flight < MaxInFlight      -> heuristic ladder only
///     otherwise                     -> shed
///
/// Per-tenant deadline budgets ride on top: each tenant owns a token
/// bucket of solve-seconds; an admitted request charges its deadline (or a
/// nominal cost when it has none) and the bucket refills continuously.  A
/// tenant that outruns its budget is shed individually while others keep
/// full service.  A refill rate of zero makes the bucket a hard quota,
/// which is what the deterministic tests use.
///
/// Degraded and shed results are never cached — the daemon consults the
/// decision's level before memoizing (a HeuristicOnly answer under load
/// must not mask the full-effort answer after load subsides).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SERVICE_ADMISSION_H
#define SWP_SERVICE_ADMISSION_H

#include "swp/service/SchedulerService.h"

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace swp {

/// How much the admission controller degraded one request.
enum class DegradationLevel : std::uint8_t {
  /// Full service: the configured engine at configured effort.
  None,
  /// Exact engines still run, but with a reduced per-T time slice and a
  /// narrower candidate-T window.
  ReducedEffort,
  /// Only the heuristic ladder runs; no exact engine, no proofs beyond
  /// "sits on T_lb".
  HeuristicOnly,
  /// Not admitted at all; the response says so and why.
  Shed,
};

/// Short stable name of \p L ("none", "reduced-effort", ...).
const char *degradationLevelName(DegradationLevel L);

struct AdmissionOptions {
  /// Hard in-flight bound; requests beyond it are shed.
  int MaxInFlight = 64;
  /// In-flight depth at which exact effort is reduced.
  int ReducedEffortAt = 32;
  /// In-flight depth at which only the heuristic ladder runs.
  int HeuristicOnlyAt = 48;
  /// Per-T time limit applied at ReducedEffort (seconds).
  double ReducedTimeLimitPerT = 0.25;
  /// Candidate-T window cap applied at ReducedEffort.
  int ReducedMaxTSlack = 8;
  /// Per-tenant token bucket capacity in solve-seconds; 0 disables tenant
  /// budgets entirely.
  double TenantBudgetSeconds = 0.0;
  /// Bucket refill rate in solve-seconds per wall second; 0 never refills
  /// (a hard quota, used by deterministic tests).
  double TenantRefillPerSecond = 0.0;
  /// Budget charged by a request that carries no explicit deadline.
  double DefaultChargeSeconds = 1.0;
};

/// The verdict for one request.
struct AdmissionDecision {
  DegradationLevel Level = DegradationLevel::None;
  /// Human-readable cause for any non-None level (carried back to the
  /// client in its response).
  std::string Reason;

  bool admitted() const { return Level != DegradationLevel::Shed; }
};

struct AdmissionStats {
  std::uint64_t Admitted = 0;
  std::uint64_t ReducedEffort = 0;
  std::uint64_t HeuristicOnly = 0;
  std::uint64_t Shed = 0;
  /// Of Shed, how many were per-tenant budget rejections (the queue may
  /// have had room).
  std::uint64_t TenantShed = 0;
  int InFlight = 0;
  int InFlightHighWater = 0;
};

/// Thread-safe admission controller; one per daemon, in front of every
/// keyed SchedulerService.
class AdmissionController {
public:
  explicit AdmissionController(AdmissionOptions Opts = {});

  /// Decides one request from \p Tenant that asks for \p DeadlineSeconds
  /// of solve budget (<= 0 means no explicit deadline).  Every admitted()
  /// decision must be paired with exactly one complete() when the request
  /// finishes, whatever its outcome.
  AdmissionDecision admit(const std::string &Tenant, double DeadlineSeconds);

  /// Releases the in-flight slot of one admitted request.
  void complete();

  /// Applies \p Level's effort reduction to \p Base (ReducedEffort tightens
  /// limits; other levels pass through — HeuristicOnly bypasses the exact
  /// engines entirely, so there is nothing to tighten).
  JobOptions degrade(const JobOptions &Base, DegradationLevel Level) const;

  AdmissionStats stats() const;
  const AdmissionOptions &options() const { return Opts; }

private:
  struct TenantBucket {
    double Tokens = 0.0;
    std::chrono::steady_clock::time_point LastRefill;
  };

  AdmissionOptions Opts;
  mutable std::mutex Mutex;
  AdmissionStats Counters;
  std::unordered_map<std::string, TenantBucket> Tenants;
};

} // namespace swp

#endif // SWP_SERVICE_ADMISSION_H
