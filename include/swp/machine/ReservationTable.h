//===- swp/machine/ReservationTable.h - Pipeline reservation tables -*- C++ -*-
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reservation tables (Kogge [15]) describing how an operation occupies the
/// stages of a function unit over time — the paper's representation of
/// structural hazards (Section 5).
///
/// A table has s stages and d columns (d = execution time); entry (s, l) is
/// 1 when stage s is busy l cycles after the operation starts.  A *clean*
/// pipeline busies a single dedicated stage for one cycle per stage; a
/// *non-pipelined* unit busies one stage for all d cycles; an *unclean*
/// pipeline has an arbitrary pattern (a stage used twice, or for several
/// cycles).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_MACHINE_RESERVATIONTABLE_H
#define SWP_MACHINE_RESERVATIONTABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace swp {

/// Stage-by-cycle occupancy pattern of one operation on a function unit.
class ReservationTable {
public:
  ReservationTable() = default;

  /// Builds a table from explicit rows; each inner vector is one stage and
  /// entries are 0/1 busy flags.  All rows must have equal length >= 1.
  explicit ReservationTable(std::vector<std::vector<std::uint8_t>> Rows);

  /// Fully pipelined d-stage unit: stage k busy exactly at cycle k
  /// (no structural hazard; a new op can start every cycle).
  static ReservationTable cleanPipelined(int ExecTime);

  /// Non-pipelined unit: a single stage busy for all of cycles 0..d-1.
  static ReservationTable nonPipelined(int ExecTime);

  int numStages() const { return static_cast<int>(Rows.size()); }
  int execTime() const {
    return Rows.empty() ? 0 : static_cast<int>(Rows.front().size());
  }

  /// True when stage \p Stage is busy \p Cycle cycles after issue.
  bool busy(int Stage, int Cycle) const {
    return Rows[static_cast<size_t>(Stage)][static_cast<size_t>(Cycle)] != 0;
  }

  /// Column offsets at which \p Stage is busy, ascending.
  std::vector<int> busyColumns(int Stage) const;

  /// The paper's modulo-scheduling precondition: at period \p T no stage of
  /// a *single* operation may occupy two columns congruent mod T (otherwise
  /// the op collides with itself and T must be skipped — Fig. 2(b)).
  bool satisfiesModuloConstraint(int T) const;

  /// True when two operations issued on the *same* physical unit at pattern
  /// offsets p and q with (q - p) mod T == \p DeltaMod collide on some
  /// stage.  DeltaMod == 0 collides whenever the table is non-empty.
  bool conflictsAtOffset(int DeltaMod, int T) const;

  /// True when every stage is busy at most one cycle and stage k is busy
  /// only at cycle k (the clean-pipeline shape of [9]).
  bool isCleanPipelined() const;

  /// Renders the table as the paper's Figure 2 style grid ("Stage k ...").
  std::string render() const;

private:
  std::vector<std::vector<std::uint8_t>> Rows;
};

/// Multi-function pipelines (paper Section 7 extension): two operations of
/// *different* kinds sharing one physical unit, each with its own
/// reservation table over the unit's stages.  \returns true when an op
/// using \p A at pattern offset p and an op using \p B at offset
/// p + \p DeltaMod collide on some stage at period \p T.  Stage indices
/// refer to the same physical stages; the shorter table simply never uses
/// the extra stages.
bool tablesConflictAtOffset(const ReservationTable &A,
                            const ReservationTable &B, int DeltaMod, int T);

} // namespace swp

#endif // SWP_MACHINE_RESERVATIONTABLE_H
