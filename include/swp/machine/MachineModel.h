//===- swp/machine/MachineModel.h - Target machine descriptions -*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A machine is a set of function-unit types; type r has R_r identical
/// physical units sharing one reservation table (the paper's simplifying
/// assumption in Section 5.1).  Instructions reference types through their
/// DDG OpClass.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_MACHINE_MACHINEMODEL_H
#define SWP_MACHINE_MACHINEMODEL_H

#include "swp/ddg/Ddg.h"
#include "swp/machine/ReservationTable.h"
#include "swp/machine/Topology.h"

#include <cassert>
#include <optional>
#include <string>
#include <vector>

namespace swp {

/// One function-unit type: a name, a unit count R_r, and the shared
/// reservation table.  Multi-function units carry extra reservation-table
/// variants (one per operation kind the unit executes); DDG nodes select a
/// variant via DdgNode::Variant.
struct FuType {
  std::string Name;
  int Count = 1;
  ReservationTable Table;
  std::vector<ReservationTable> ExtraVariants;

  int numVariants() const {
    return 1 + static_cast<int>(ExtraVariants.size());
  }

  const ReservationTable &variant(int V) const {
    assert(V >= 0 && V < numVariants() && "bad variant index");
    return V == 0 ? Table : ExtraVariants[static_cast<size_t>(V) - 1];
  }
};

/// A machine: the ordered list of FU types (order defines OpClass indices).
class MachineModel {
public:
  MachineModel() = default;
  explicit MachineModel(std::string Name) : ModelName(std::move(Name)) {}

  /// Adds a type; \returns its OpClass index.
  int addFuType(std::string Name, int Count, ReservationTable Table) {
    assert(Count >= 1 && "need at least one unit per type");
    Types.push_back({std::move(Name), Count, std::move(Table), {}});
    return static_cast<int>(Types.size()) - 1;
  }

  /// Adds a reservation-table variant to type \p R (multi-function
  /// pipelines); \returns the variant index for DdgNode::Variant.
  int addVariant(int R, ReservationTable Table) {
    assert(R >= 0 && R < numTypes() && "bad type index");
    Types[static_cast<size_t>(R)].ExtraVariants.push_back(std::move(Table));
    return Types[static_cast<size_t>(R)].numVariants() - 1;
  }

  /// The reservation table instruction \p Node occupies.
  const ReservationTable &tableFor(const DdgNode &Node) const {
    return Types[static_cast<size_t>(Node.OpClass)].variant(Node.Variant);
  }

  /// True when every node of \p G names a valid OpClass and variant.
  bool acceptsDdg(const Ddg &G) const;

  int numTypes() const { return static_cast<int>(Types.size()); }
  const FuType &type(int R) const { return Types[static_cast<size_t>(R)]; }
  const std::vector<FuType> &types() const { return Types; }
  const std::string &name() const { return ModelName; }

  /// \returns the OpClass of the type named \p Name, or -1.
  int findType(const std::string &Name) const;

  /// Total number of physical units across all types.
  int totalUnits() const;

  /// Global physical-unit index of unit \p Unit (0-based) of type \p R;
  /// units are numbered type-major.
  int globalUnitIndex(int R, int Unit) const;

  /// Resource-constrained lower bound T_res on the initiation interval: for
  /// each type, the busiest stage must fit all its ops' usage within
  /// R_r * T cycles (generalizes ceil(N_r / R_r) to reservation tables).
  int resourceMii(const Ddg &G) const;

  /// True when every FU type *used by \p G* satisfies the modulo-scheduling
  /// constraint at period \p T (paper Section 2: offending T are skipped).
  bool moduloFeasible(const Ddg &G, int T) const;

  /// Attaches a placement topology over the machine's physical units
  /// (global type-major unit indices).  Call after every addFuType: the
  /// topology's unit count must equal totalUnits().
  void setTopology(Topology Topo) {
    assert(Topo.numUnits() == totalUnits() &&
           "topology unit count must match the machine's physical units");
    Topo.hops(0, 0); // Force the hop matrix now; keeps const accessors cheap.
    MaybeTopo = std::move(Topo);
  }

  /// The attached topology, or nullptr for the paper's flat machine.
  const Topology *topology() const {
    return MaybeTopo ? &*MaybeTopo : nullptr;
  }

  /// True when a topology is attached *and* actually restricts placement
  /// (some pair of units is not directly connected).  Every consumer keeps
  /// the exact pre-topology code path when this is false, so flat machines
  /// and vacuous (fully connected) topologies are bit-identical to the
  /// seed behavior.
  bool topologyConstrains() const {
    return MaybeTopo && MaybeTopo->constrains();
  }

private:
  std::string ModelName;
  std::vector<FuType> Types;
  std::optional<Topology> MaybeTopo;
};

} // namespace swp

#endif // SWP_MACHINE_MACHINEMODEL_H
