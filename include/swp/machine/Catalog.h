//===- swp/machine/Catalog.h - Ready-made machine models --------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machines used throughout the paper's examples and evaluation,
/// reconstructed per DESIGN.md Section 4:
///
/// - Clean / non-pipelined / hazard variants of the Section 2 two-unit
///   machine (FP + Load/Store) used by Schedules A/B/C and Figures 1-4.
/// - A PowerPC-604-like machine for the Table 4/5 corpus runs (latencies
///   from the 604 technical summary; unclean units model the 604's
///   non-pipelined multi-cycle integer and FP-divide paths).
///
/// OpClass conventions for the example machines: class 0 = FP,
/// class 1 = Load/Store.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_MACHINE_CATALOG_H
#define SWP_MACHINE_CATALOG_H

#include "swp/machine/MachineModel.h"

namespace swp {

/// Section 3 baseline: 1 clean-pipelined FP unit (2-stage) and 1
/// clean-pipelined Load/Store unit (3-stage).
MachineModel exampleCleanMachine();

/// Section 4 machine: 2 *non-pipelined* FP units (exec time 2) and 1
/// clean-pipelined Load/Store unit; the machine of Figure 3's Schedule B.
MachineModel exampleNonPipelinedMachine();

/// Schedule A's machine: 2 non-pipelined FP units (exec time 2) only
/// (plus a Load/Store type for completeness).  Used to demonstrate a
/// schedule that is legal under run-time mapping but admits no fixed
/// FU assignment (circular-arc clique of size 3 on 2 units).
MachineModel exampleTwoFpMachine();

/// Section 5 machine: both units are unclean pipelines.
/// FP: stage1 @ {0}, stage2 @ {1}, stage3 @ {1,2} (exec 3);
/// LS: stage1 @ {0,1}, stage2 @ {2} (exec 3).
MachineModel exampleHazardMachine();

/// A reservation table violating the modulo constraint at T=2 (stage 3 busy
/// at columns 1 and 3), the paper's Figure 2(b) skip-this-T illustration.
ReservationTable moduloViolationTable();

/// PowerPC-604-like corpus machine:
///   class 0 SCIU x2  clean(1)          - simple integer
///   class 1 MCIU x1  non-pipelined(2)  - multi-cycle integer
///   class 2 FPU  x1  unclean 3-stage, stage3 busy 2 cycles (exec 4)
///   class 3 LSU  x1  clean(2)          - load/store
///   class 4 FDIV x1  non-pipelined(6)  - FP divide path
MachineModel ppc604Like();

/// Fully clean VLIW machine with the same class layout as ppc604Like()
/// (every unit clean-pipelined) — the ablation baseline isolating the cost
/// of structural hazards.
MachineModel cleanVliw();

/// Multi-function pipeline variant of the PPC604-like machine (paper
/// Section 7 extension): FP adds/multiplies and FP divides share ONE
/// physical FPU (the real 604 behaviour) instead of a separate FDIV type.
///   class 0 SCIU x2  clean(1)
///   class 1 MCIU x1  non-pipelined(2)
///   class 2 FPU  x1  variant 0: 3-stage pipe, stage3 busy 2 cycles;
///                    variant 1 (divide): stage1 held 6 cycles, then
///                    stages 2-3 for writeback (exec 8)
///   class 3 LSU  x1  clean(2)
/// DDG nodes pick the divide path with DdgNode::Variant ==
/// ppc604FpuDivVariant().
MachineModel ppc604MultiFunction();

/// The FPU divide-variant index within ppc604MultiFunction().
int ppc604FpuDivVariant();

/// A CGRA-style processing-element array: one "PE" FU type with
/// \p Rows * \p Cols units on a 4-neighbor grid (torus wrap-around when
/// \p Torus), instance names pe_<r>_<c>.  Variant 0 is a clean 1-cycle
/// ALU; variant 1 (see cgraMulVariant) a non-pipelined 2-cycle
/// multiplier.  Values may cross at most \p MaxHops hops (-1 =
/// unlimited); each intermediate hop costs 1 cycle and a ROUTE cell on
/// the producer's PE.
MachineModel cgraGrid(int Rows, int Cols, bool Torus = false,
                      int MaxHops = 2);

/// The multiplier variant index within cgraGrid machines.
int cgraMulVariant();

/// Every ready-made machine by name: the seven paper machines plus CGRA
/// meshes and tori from 2x2 to 6x6 — the --list-machines / workload
/// registry.
struct CatalogEntry {
  std::string Name;
  MachineModel (*Build)();
};
const std::vector<CatalogEntry> &machineCatalog();

/// Builds the catalog machine named \p Name; \returns false when absent.
bool buildCatalogMachine(const std::string &Name, MachineModel &Out);

} // namespace swp

#endif // SWP_MACHINE_CATALOG_H
