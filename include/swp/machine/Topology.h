//===- swp/machine/Topology.h - Placement adjacency between units -*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An optional placement topology over a machine's physical units.  The
/// paper's Section 5.1 machine is a flat list of FU types whose units are
/// fully interchangeable; a Topology generalizes that to *named instances*
/// connected by a directed adjacency relation (the CGRA view: PEs on a
/// grid, values routed hop by hop through neighbors).
///
/// Semantics, for a schedule with a fixed mapping M (run-time mapping
/// ignores topology by definition — units are picked per-iteration at run
/// time, so no static placement exists to constrain):
///
///   * A DDG edge i -> j with latency L and distance m, placed on units
///     u = M(i), v = M(j), is legal iff v is reachable from u and the hop
///     count h = hops(u, v) satisfies h <= MaxHops (when MaxHops >= 0).
///   * Routing across h hops costs extra latency
///       rho(h) = HopLatency * max(0, h - 1)
///     so the dependence row tightens to  t_j + T*m - t_i >= L + rho(h).
///     (The final hop is the ordinary operand forward already paid for by
///     L; each *intermediate* hop adds HopLatency cycles.)
///   * A value crossing h >= 2 hops occupies a synthetic ROUTE stage on
///     the *producer's* unit at cycles  t_i + L + k*HopLatency  for
///     k in [0, h-1) — the cycles during which the value is in flight
///     through the interconnect.  ROUTE cells have capacity 1 per
///     (unit, cycle mod T) and conflict only with other ROUTE cells
///     (the stage is disjoint from every reservation-table stage).
///
/// A topology in which every ordered pair of units is connected by a
/// direct edge (hops <= 1 everywhere) imposes no constraint at all and
/// `constrains()` returns false; every consumer keeps the exact
/// type-level formulation in that case, so pre-topology machines are
/// bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_MACHINE_TOPOLOGY_H
#define SWP_MACHINE_TOPOLOGY_H

#include <string>
#include <utility>
#include <vector>

namespace swp {

class Topology {
public:
  Topology() = default;
  explicit Topology(int NumUnits);

  int numUnits() const { return static_cast<int>(Names.size()); }

  /// Renames unit \p U (default names are "u<index>").
  void setName(int U, std::string Name);
  const std::string &unitName(int U) const;

  /// \returns the unit named \p Name, or -1.
  int findUnit(const std::string &Name) const;

  /// Adds the directed edge From -> To.  \returns false (and changes
  /// nothing) when the edge is a self-loop, out of range, or a duplicate.
  bool addEdge(int From, int To);
  bool hasEdge(int From, int To) const;
  const std::vector<std::pair<int, int>> &edges() const { return Edges; }

  /// Per-intermediate-hop routing latency (>= 1).
  void setHopLatency(int L);
  int hopLatency() const { return HopLat; }

  /// Maximum hop count a single value may cross; -1 means unlimited.
  void setMaxHops(int H) { MaxHopCount = H < 0 ? -1 : H; }
  int maxHops() const { return MaxHopCount; }

  /// BFS hop distance From -> To along directed edges; 0 when From == To,
  /// -1 when unreachable.
  int hops(int From, int To) const;

  /// True when a value produced on \p From may be consumed on \p To:
  /// reachable and within MaxHops.
  bool feedAllowed(int From, int To) const;

  /// Extra dependence latency rho(h) for the From -> To hop distance.
  /// \pre feedAllowed(From, To).
  int routePenalty(int From, int To) const;

  /// Largest routePenalty over all allowed ordered pairs (the KMax /
  /// scheduling-window headroom consumers must add).
  int maxRoutePenalty() const;

  /// False when the topology is vacuous: every ordered pair allowed at
  /// hop distance <= 1 (zero penalty, no ROUTE cells, no forbidden
  /// pairs).  Consumers use the plain type-level paths then.
  bool constrains() const;

  /// Partitions the units in [\p Lo, \p Hi) into interchangeability
  /// classes: u and v share a class iff swapping them leaves the hop
  /// matrix invariant (hops(u,w) == hops(v,w) and hops(w,u) == hops(w,v)
  /// for every w outside {u,v}, and hops(u,v) == hops(v,u)).  Classes are
  /// built greedily requiring pairwise interchangeability with *every*
  /// current member, so arbitrary within-class permutations are
  /// symmetries — sound for lexicographic symmetry breaking.
  std::vector<std::vector<int>> interchangeClasses(int Lo, int Hi) const;

  /// The producer-relative busy columns of the ROUTE stage for a value
  /// with edge latency \p EdgeLatency crossing \p Hops hops at
  /// \p HopLat cycles per intermediate hop: {EdgeLatency + k*HopLat :
  /// k in [0, Hops-1)}.  Empty when Hops < 2.
  static std::vector<int> routeColumns(int EdgeLatency, int Hops, int HopLat);

private:
  void ensureHopMatrix() const;
  bool interchangeable(int U, int V) const;

  std::vector<std::string> Names;
  std::vector<std::pair<int, int>> Edges;
  int HopLat = 1;
  int MaxHopCount = -1;

  // Lazily computed all-pairs BFS distances (row-major, -1 unreachable).
  mutable std::vector<int> HopMatrix;
  mutable bool HopsValid = false;
};

} // namespace swp

#endif // SWP_MACHINE_TOPOLOGY_H
