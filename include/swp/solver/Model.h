//===- swp/solver/Model.h - MILP model builder ------------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mixed-integer linear program: variables with bounds and integrality,
/// linear constraints, and a linear objective (always minimized).
///
/// The scheduling formulations of the paper (Sections 3-5) are built as
/// MilpModel instances and handed to BranchAndBound.  The model is solver-
/// independent; the paper used a commercial ILP code, we ship our own
/// simplex + branch-and-bound (see DESIGN.md for the substitution argument).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SOLVER_MODEL_H
#define SWP_SOLVER_MODEL_H

#include <cassert>
#include <limits>
#include <string>
#include <vector>

namespace swp {

/// Index of a variable within a MilpModel.
using VarId = int;

/// One coefficient*variable term of a linear expression.
struct LinTerm {
  VarId Var;
  double Coef;
};

/// A linear expression sum(Coef_k * Var_k) + Constant.
///
/// Duplicate variables are allowed when building; normalize() merges them.
class LinExpr {
public:
  LinExpr() = default;

  /// Appends \p Coef * \p Var (no merging until normalize()).
  LinExpr &add(VarId Var, double Coef) {
    if (Coef != 0.0)
      Terms.push_back({Var, Coef});
    return *this;
  }

  /// Adds a constant offset.
  LinExpr &addConstant(double C) {
    Constant += C;
    return *this;
  }

  /// Appends every term of \p Other scaled by \p Scale.
  LinExpr &addScaled(const LinExpr &Other, double Scale);

  /// Merges duplicate variables and drops zero coefficients.
  void normalize();

  const std::vector<LinTerm> &terms() const { return Terms; }
  double constant() const { return Constant; }
  bool empty() const { return Terms.empty(); }

private:
  std::vector<LinTerm> Terms;
  double Constant = 0.0;
};

/// Comparison sense of a constraint.
enum class CmpKind { LE, GE, EQ };

/// Integrality class of a variable.
enum class VarKind { Continuous, Integer, Binary };

/// A model variable: bounds, integrality, and a debug name.
struct ModelVar {
  double Lb;
  double Ub;
  VarKind Kind;
  std::string Name;
  /// True when some constraint already implies Var <= Ub in the LP
  /// relaxation (e.g. a[t][i] <= 1 follows from sum_t a[t][i] = 1), letting
  /// the simplex skip the explicit upper-bound row.
  bool UbRowRedundant = false;
  /// Branch-and-bound branching priority; lower classes branch first.
  /// Structural decisions (the A matrix) should outrank derived variables
  /// (colors, overlap indicators).
  int BranchPriority = 0;
};

/// A linear constraint Expr (<=,>=,=) Rhs.
struct ModelConstraint {
  LinExpr Expr;
  CmpKind Cmp;
  double Rhs;
};

/// A mixed-integer linear program; the objective is minimized.
class MilpModel {
public:
  static constexpr double Inf = std::numeric_limits<double>::infinity();

  /// Adds a variable and returns its id.
  VarId addVar(double Lb, double Ub, VarKind Kind, std::string Name);

  /// Adds a binary {0,1} variable.
  VarId addBinary(std::string Name) {
    return addVar(0.0, 1.0, VarKind::Binary, std::move(Name));
  }

  /// Marks \p Var's upper bound row as implied by other constraints.
  void setUbRowRedundant(VarId Var) {
    assert(Var >= 0 && Var < numVars() && "bad var id");
    Vars[Var].UbRowRedundant = true;
  }

  /// Fixes \p Var to \p Value (Lb = Ub = Value).  Used for symmetry
  /// anchoring at model-build time, where presolve can fold the fixed
  /// column away before the solver ever prices it.
  void fixVar(VarId Var, double Value) {
    assert(Var >= 0 && Var < numVars() && "bad var id");
    Vars[Var].Lb = Value;
    Vars[Var].Ub = Value;
  }

  /// Sets \p Var's branching priority class (lower branches first).
  void setBranchPriority(VarId Var, int Priority) {
    assert(Var >= 0 && Var < numVars() && "bad var id");
    Vars[Var].BranchPriority = Priority;
  }

  /// Adds the constraint \p Expr \p Cmp \p Rhs.  The expression's constant
  /// is folded into the right-hand side.
  void addConstraint(LinExpr Expr, CmpKind Cmp, double Rhs);

  /// Sets the (minimized) objective.  An empty objective makes every
  /// feasible point optimal — used for pure feasibility checks.
  void setObjective(LinExpr Expr);

  int numVars() const { return static_cast<int>(Vars.size()); }
  int numConstraints() const { return static_cast<int>(Constraints.size()); }

  const ModelVar &var(VarId Id) const { return Vars[Id]; }
  const std::vector<ModelVar> &vars() const { return Vars; }
  const std::vector<ModelConstraint> &constraints() const {
    return Constraints;
  }
  const LinExpr &objective() const { return Objective; }

  /// \returns the value of \p Expr under assignment \p X.
  static double evaluate(const LinExpr &Expr, const std::vector<double> &X);

  /// \returns true if \p X satisfies all constraints and bounds within
  /// \p Tol (integrality of integer variables included).
  bool isFeasible(const std::vector<double> &X, double Tol = 1e-6) const;

  /// False when construction recorded a structural error (empty variable
  /// domain, non-finite bound or coefficient); the solver refuses invalid
  /// models with a typed error instead of computing on garbage.
  bool valid() const { return BuildError.empty(); }
  /// First construction error ("" when valid()).
  const std::string &buildError() const { return BuildError; }

private:
  std::vector<ModelVar> Vars;
  std::vector<ModelConstraint> Constraints;
  LinExpr Objective;
  std::string BuildError;
};

} // namespace swp

#endif // SWP_SOLVER_MODEL_H
