//===- swp/solver/Presolve.h - LP/MILP presolve -----------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bound-strengthening presolve run before the sparse simplex ever sees a
/// model.  Every reduction is an *exact* reformulation of the LP relaxation
/// (the feasible set and objective are unchanged), so presolved and raw
/// solves are interchangeable everywhere — in particular the differential
/// fuzzer can compare them byte for byte:
///
///   - fixed variables (lb == ub) fold out of every row they appear in;
///   - singleton rows (one free variable left) become variable bounds and
///     the row is dropped;
///   - rows with no free variables left become pure consistency checks
///     (dropped when satisfied, a trivial-infeasibility proof otherwise);
///
/// iterated to a fixed point: a singleton row can fix its variable, which
/// can empty another row, and so on.  On the paper's formulations this
/// eliminates the dependence-window-empty a[t][i] slots and the
/// symmetry-fixed first color of every FU type.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SOLVER_PRESOLVE_H
#define SWP_SOLVER_PRESOLVE_H

#include "swp/solver/Model.h"

#include <vector>

namespace swp {

/// Outcome of a presolve pass over (model, bounds).
struct PresolveInfo {
  /// True when a row or bound pair was proven contradictory; the model has
  /// no feasible point and the solver can answer without pivoting.
  bool Infeasible = false;
  /// Human-readable reason when Infeasible ("row 3 empty and violated").
  std::string Reason;
  /// Strengthened bounds, same length as the model's variable count.
  /// Always at least as tight as the input bounds.
  std::vector<double> Lb, Ub;
  /// Per-constraint drop flag: true when the row became a (satisfied)
  /// tautology or was converted into a bound.
  std::vector<char> DropRow;
  /// Variables fixed (lb == ub) after presolve that were not fixed before.
  int NewlyFixed = 0;
  /// Rows dropped (singleton conversions + satisfied empty rows).
  int DroppedRows = 0;
  /// Fixed-point sweeps performed.
  int Sweeps = 0;
};

/// Runs the presolve fixed point for \p M under variable bounds
/// \p Lb / \p Ub (same length as M.numVars()).  The returned bounds and
/// drop flags describe an LP with the identical feasible set and objective.
PresolveInfo presolveModel(const MilpModel &M, const std::vector<double> &Lb,
                           const std::vector<double> &Ub);

/// Convenience overload using the model's own bounds.
PresolveInfo presolveModel(const MilpModel &M);

} // namespace swp

#endif // SWP_SOLVER_PRESOLVE_H
