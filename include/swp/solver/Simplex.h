//===- swp/solver/Simplex.h - Dense two-phase primal simplex ----*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense two-phase primal simplex solving the LP relaxation of a MilpModel
/// under overridden variable bounds (as produced by branch-and-bound nodes).
///
/// The implementation shifts every variable to its lower bound, adds explicit
/// rows for finite upper bounds (skipped when the model marks them redundant)
/// and runs Dantzig pricing with a Bland's-rule fallback for anti-cycling.
/// Problem sizes in this project are a few hundred rows/columns, where a
/// dense tableau is both simple and fast enough.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SOLVER_SIMPLEX_H
#define SWP_SOLVER_SIMPLEX_H

#include "swp/solver/Model.h"
#include "swp/support/Cancellation.h"

#include <vector>

namespace swp {

/// Outcome of an LP solve.  Cancelled means the caller's token fired
/// mid-pivot; like IterLimit it proves nothing about feasibility.
enum class LpStatus { Optimal, Infeasible, Unbounded, IterLimit, Cancelled };

/// LP solution: status, objective value, and a full variable assignment.
struct LpResult {
  LpStatus Status = LpStatus::IterLimit;
  double Objective = 0.0;
  std::vector<double> X;
  int Iterations = 0;
};

/// Solves the LP relaxation of \p M with variable bounds \p Lb / \p Ub
/// (same length as M.numVars(); entries may tighten or fix the model's
/// bounds).  Lower bounds must be finite; upper bounds may be +infinity.
/// \p Cancel is polled inside the pivot loop; a fired token returns
/// LpStatus::Cancelled (a default token never fires).
LpResult solveLp(const MilpModel &M, const std::vector<double> &Lb,
                 const std::vector<double> &Ub,
                 const CancellationToken &Cancel = {});

/// Convenience overload using the model's own bounds.
LpResult solveLp(const MilpModel &M, const CancellationToken &Cancel = {});

} // namespace swp

#endif // SWP_SOLVER_SIMPLEX_H
