//===- swp/solver/Simplex.h - Sparse revised simplex ------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse revised simplex over bounded variables, built for the reuse
/// patterns of the branch-and-bound MILP search and the driver's
/// candidate-T sweep:
///
///   - constraints are stored once, column-major and sparse; every row gets
///     one logical (slack/surplus) variable, so variable bounds are handled
///     natively and no explicit upper-bound rows exist;
///   - the basis inverse is kept as an eta file (product form) updated per
///     pivot and periodically refactorized by Gauss-Jordan elimination with
///     basis repair;
///   - a SparseLp workspace persists the basis across solve() calls under
///     changed bounds: a branch-and-bound child re-solves from its parent's
///     optimal basis by dual-simplex reoptimization (any basis is dual
///     feasible for the feasibility models the driver mostly builds), with
///     a composite phase-1 primal (sum of infeasibilities) as the general
///     fallback and Bland's rule against cycling;
///   - an LP-exact presolve (swp/solver/Presolve.h) runs at construction:
///     fixed columns fold away and singleton rows become bounds before the
///     solver ever prices them.
///
/// The solveLp free functions keep the historical one-shot contract (each
/// call builds a throwaway workspace); warm-start users hold a SparseLp.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SOLVER_SIMPLEX_H
#define SWP_SOLVER_SIMPLEX_H

#include "swp/solver/Model.h"
#include "swp/solver/Presolve.h"
#include "swp/support/Cancellation.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace swp {

/// Outcome of an LP solve.  Cancelled means the caller's token fired
/// mid-pivot; like IterLimit it proves nothing about feasibility.
enum class LpStatus { Optimal, Infeasible, Unbounded, IterLimit, Cancelled };

/// LP solution: status, objective value, and a full variable assignment.
struct LpResult {
  LpStatus Status = LpStatus::IterLimit;
  double Objective = 0.0;
  std::vector<double> X;
  int Iterations = 0;
};

/// Basis membership of one column.  Nonbasic columns sit at the named
/// (finite) bound; the workspace normalizes statuses that point at an
/// infinite bound.
enum class LpBasisStatus : unsigned char { AtLower, AtUpper, Basic };

/// Cumulative effort counters of a SparseLp workspace (never reset by
/// solve(); callers diff snapshots).
struct LpStats {
  /// Primal pivots (phase 1 + phase 2).
  std::int64_t Pivots = 0;
  /// Dual-simplex reoptimization pivots.
  std::int64_t DualPivots = 0;
  /// Nonbasic bound-to-bound flips (no basis change).
  std::int64_t BoundFlips = 0;
  /// Basis refactorizations (eta file rebuilt from scratch).
  std::int64_t Refactorizations = 0;
  /// solve() calls answered by this workspace ...
  std::int64_t Solves = 0;
  /// ... of which started from a carried or seeded basis.
  std::int64_t WarmSolves = 0;

  std::int64_t totalPivots() const { return Pivots + DualPivots; }
};

/// A reusable LP workspace bound to one MilpModel.  The model must outlive
/// the workspace and must not change while it is in use.  Not thread-safe;
/// one workspace per search.
class SparseLp {
public:
  explicit SparseLp(const MilpModel &M);

  /// Solves the LP relaxation under variable bounds \p Lb / \p Ub (same
  /// length as the model's variable count; entries may tighten or fix the
  /// model's bounds; lower bounds must be finite).  The final basis is
  /// retained, so the next solve() under nearby bounds starts warm.
  /// \p Cancel is polled at entry and inside the pivot loops.
  LpResult solve(const std::vector<double> &Lb, const std::vector<double> &Ub,
                 const CancellationToken &Cancel = {});

  /// Convenience overload using the model's own bounds.
  LpResult solve(const CancellationToken &Cancel = {});

  /// Per-structural-variable basis statuses after the last solve — the
  /// carryable part of the basis (logical statuses are re-derived).
  std::vector<LpBasisStatus> structuralBasis() const;

  /// Seeds the next solve()'s starting basis from per-structural hints (as
  /// produced by structuralBasis(), possibly on a *different* model and
  /// mapped by the caller).  Hinted-basic columns are crashed into the
  /// basis where they pivot cleanly; rows left uncovered keep their
  /// logicals.  A short vector seeds a prefix; out-of-range hints are
  /// ignored.
  void seedBasis(const std::vector<LpBasisStatus> &StructuralHints);

  /// True when presolve already proved the model (under its own bounds)
  /// infeasible; solve() then answers without pivoting.
  bool presolveInfeasible() const { return Pre.Infeasible; }

  /// Presolve reductions (see swp/solver/Presolve.h).
  const PresolveInfo &presolve() const { return Pre; }

  /// Rows surviving presolve (each owns one logical variable).
  int numRows() const { return NumRows; }

  const LpStats &stats() const { return Stats; }

  /// Refactorize after this many eta updates (testing/tuning knob).
  void setRefactorInterval(int K) { RefactorInterval = K < 1 ? 1 : K; }

private:
  struct Eta {
    int Row;
    double Pivot;
    std::vector<std::pair<int, double>> Other;
  };

  int numCols() const { return NumStruct + NumRows; }
  bool isLogical(int C) const { return C >= NumStruct; }
  double nonbasicValue(int C) const;
  LpBasisStatus boundStatus(int C) const;

  void ftran(std::vector<double> &V) const;
  void btran(std::vector<double> &V) const;
  void loadColumn(int C, std::vector<double> &Dense) const;
  double colDot(int C, const std::vector<double> &RowVec) const;

  void coldBasis();
  bool factorize();
  void computeXB();
  void sanitizeStatuses();
  bool priceReducedCosts(std::vector<double> &D) const;
  double infeasibilityOf(int Row) const;
  double totalInfeasibility() const;

  enum class LoopExit { Done, Infeasible, Unbounded, Trouble, Abort };
  LoopExit dualReoptimize();
  LoopExit primalPhase1();
  LoopExit primalPhase2();
  bool iterBookkeeping();
  bool applyPivot(int Row, int EnterCol, double T, double EnterBase,
                  LpBasisStatus LeaveStatus, const std::vector<double> &Y);

  const MilpModel *Model;
  PresolveInfo Pre;
  int NumStruct = 0;
  int NumRows = 0;
  /// Column-major sparse matrix over kept rows; logicals are unit columns.
  std::vector<std::vector<std::pair<int, double>>> Cols;
  std::vector<double> Rhs;
  std::vector<CmpKind> RowCmp;
  std::vector<double> Cost; // Objective coefficient per column.
  bool CostEmpty = true;

  // Basis state, persisted across solve() calls.
  std::vector<LpBasisStatus> St; // Per column.
  std::vector<int> Basis;        // Basic column per row.
  std::vector<Eta> Etas;
  /// Etas [0, BaseEtas) are the factorization itself; only updates appended
  /// beyond it count against RefactorInterval.
  int BaseEtas = 0;
  std::vector<double> XB; // Basic variable value per row.
  bool HaveBasis = false;
  bool NeedRefactor = false;
  int RefactorInterval = 64;

  // Per-solve state.
  std::vector<double> EffLb, EffUb; // Per column.
  CancellationToken Cancel;
  int Iterations = 0;
  int MaxIterations = 0;
  int Stalled = 0;
  int BlandThreshold = 0;
  LpStatus AbortWhy = LpStatus::IterLimit;
  std::vector<double> WorkY, WorkPi, WorkD;

  LpStats Stats;
};

/// Solves the LP relaxation of \p M with variable bounds \p Lb / \p Ub
/// (same length as M.numVars(); entries may tighten or fix the model's
/// bounds).  Lower bounds must be finite; upper bounds may be +infinity.
/// \p Cancel is polled inside the pivot loop; a fired token returns
/// LpStatus::Cancelled (a default token never fires).
LpResult solveLp(const MilpModel &M, const std::vector<double> &Lb,
                 const std::vector<double> &Ub,
                 const CancellationToken &Cancel = {});

/// Convenience overload using the model's own bounds.
LpResult solveLp(const MilpModel &M, const CancellationToken &Cancel = {});

} // namespace swp

#endif // SWP_SOLVER_SIMPLEX_H
