//===- swp/solver/BranchAndBound.h - MILP search ----------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Depth-first branch-and-bound MILP solver over the simplex LP relaxation.
///
/// The scheduling driver mostly asks feasibility questions ("is there a
/// schedule+mapping at initiation interval T?"), so the solver supports
/// stopping at the first incumbent; full optimization (for the coloring
/// objective) prunes on the incumbent bound.  Time and node limits reproduce
/// the paper's censored solve-time reporting (its "10/30" note).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SOLVER_BRANCHANDBOUND_H
#define SWP_SOLVER_BRANCHANDBOUND_H

#include "swp/solver/Model.h"
#include "swp/support/Cancellation.h"
#include "swp/support/Status.h"

#include <cstdint>
#include <vector>

namespace swp {

class SparseLp;

/// Outcome classification of a MILP solve.
enum class MilpStatus {
  /// An optimal integer solution was found and proven (or the first
  /// incumbent, when StopAtFirstIncumbent is set).
  Optimal,
  /// Proven to have no integer solution.
  Infeasible,
  /// A limit was hit after at least one incumbent was found.
  Feasible,
  /// A limit was hit before any incumbent was found; nothing is proven.
  Unknown,
  /// The solve could not run at all (malformed model, injected or real
  /// resource failure); MilpResult::Error carries the typed Status.
  Error,
};

/// Why a search stopped before completing its proof.  Complements
/// MilpStatus: a Feasible/Unknown status says *that* the proof was
/// censored, the stop reason says *by what*.
enum class SearchStop {
  /// The search ran to completion (proof finished, or it stopped at the
  /// first incumbent by request).
  None,
  /// The wall-clock limit expired.
  TimeLimit,
  /// The node limit was reached.
  NodeLimit,
  /// A cancellation token fired (explicit cancel or deadline).
  Cancelled,
  /// The LP relaxation failed to converge at some node, censoring every
  /// proof beneath it.
  LpStall,
  /// A fault (injected or real — node-expansion death, allocation failure,
  /// spurious LP answer) censored the search; nothing beneath it is
  /// trusted.
  Fault,
};

/// Short lowercase name of \p S ("time-limit", "cancelled", ...).
const char *searchStopName(SearchStop S);

/// Short lowercase name of \p S ("optimal", "infeasible", ...).
const char *milpStatusName(MilpStatus S);

/// Knobs for a branch-and-bound run.
struct MilpOptions {
  /// Wall-clock limit in seconds (checked per node).
  double TimeLimitSec = 1e18;
  /// Maximum number of explored nodes.
  std::int64_t NodeLimit = INT64_MAX;
  /// Return as soon as any integer-feasible point is found.
  bool StopAtFirstIncumbent = false;
  /// Tolerance for considering an LP value integral.
  double IntTol = 1e-6;
  /// Optional warm-start assignment: when it is feasible for the model it
  /// becomes the initial incumbent, so a censored search can never return
  /// anything worse.  Ignored when infeasible or empty.
  std::vector<double> WarmStart;
  /// Cooperative cancellation: polled once per node alongside the time and
  /// node limits.  A default token never fires.
  CancellationToken Cancel;
};

/// Result of a branch-and-bound run.
struct MilpResult {
  MilpStatus Status = MilpStatus::Unknown;
  /// What cut the search short (SearchStop::None when nothing did).
  SearchStop StopReason = SearchStop::None;
  /// Typed error detail when Status == MilpStatus::Error.
  swp::Status Error;
  double Objective = 0.0;
  /// Incumbent assignment (empty when none was found).
  std::vector<double> X;
  std::int64_t Nodes = 0;
  double Seconds = 0.0;
  /// LP effort spent by this search (workspace stats diffed around the
  /// run): simplex pivots, basis refactorizations, and how many of the
  /// per-node solves started from a carried basis.
  std::int64_t LpPivots = 0;
  std::int64_t LpRefactorizations = 0;
  std::int64_t LpSolves = 0;
  std::int64_t LpWarmSolves = 0;

  bool hasSolution() const { return !X.empty(); }
  /// True when the reported status is a proof (optimal or infeasible),
  /// i.e. no limit censored the search.
  bool isProven() const {
    return Status == MilpStatus::Optimal || Status == MilpStatus::Infeasible;
  }
};

/// Solves \p M (minimization) by branch and bound.
MilpResult solveMilp(const MilpModel &M, const MilpOptions &Opts = {});

/// Same search over a caller-owned LP workspace bound to \p M.  The first
/// node reoptimizes from whatever basis \p Lp carries (a previous solve on
/// nearby bounds, or a seedBasis crash from another model), and each child
/// node dual-reoptimizes from its parent's basis instead of solving from
/// scratch.  The workspace keeps its final basis for the caller's next use.
MilpResult solveMilp(SparseLp &Lp, const MilpModel &M,
                     const MilpOptions &Opts = {});

} // namespace swp

#endif // SWP_SOLVER_BRANCHANDBOUND_H
