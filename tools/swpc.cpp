//===- swpc.cpp - Command-line software pipeliner -------------------------===//
//
// swpc: schedule a loop from text files on a machine description.
//
//   swpc --machine M.machine --loop L.loop [options]
//
// Options:
//   --scheduler ilp|ims|slack|enum   scheduling algorithm (default ilp)
//   --mapping fixed|runtime          mapping discipline (default fixed)
//   --min-buffers                    buffer-minimal schedule (ilp only)
//   --time-limit SECONDS             per-T MILP/search limit (default 10)
//   --iterations N                   iterations in kernel listings (4)
//   --print WHAT[,WHAT...]           tka, kernel, usage, arcs, lifetimes,
//                                    dot, loop, machine (default summary)
//
//===----------------------------------------------------------------------===//

#include "swp/core/CircularArcs.h"
#include "swp/core/Driver.h"
#include "swp/core/KernelExpander.h"
#include "swp/core/Registers.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/ddg/Dot.h"
#include "swp/heuristics/Enumerative.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/heuristics/SlackModulo.h"
#include "swp/textio/Parser.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace swp;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --machine FILE --loop FILE [--scheduler "
               "ilp|ims|slack|enum]\n"
               "       [--mapping fixed|runtime] [--min-buffers] "
               "[--time-limit S]\n"
               "       [--iterations N] [--print tka,kernel,usage,arcs,"
               "lifetimes,dot,loop,machine]\n",
               Argv0);
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

bool wantArtifact(const std::string &Prints, const char *What) {
  size_t Pos = 0;
  while (Pos < Prints.size()) {
    size_t Comma = Prints.find(',', Pos);
    std::string Item = Prints.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Item == What)
      return true;
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string MachinePath, LoopPath, Scheduler = "ilp", Mapping = "fixed";
  std::string Prints;
  bool MinBuffers = false;
  double TimeLimit = 10.0;
  int Iterations = 4;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    std::string Val;
    if (Arg == "--machine" && Next(Val))
      MachinePath = Val;
    else if (Arg == "--loop" && Next(Val))
      LoopPath = Val;
    else if (Arg == "--scheduler" && Next(Val))
      Scheduler = Val;
    else if (Arg == "--mapping" && Next(Val))
      Mapping = Val;
    else if (Arg == "--min-buffers")
      MinBuffers = true;
    else if (Arg == "--time-limit" && Next(Val))
      TimeLimit = std::atof(Val.c_str());
    else if (Arg == "--iterations" && Next(Val))
      Iterations = std::atoi(Val.c_str());
    else if (Arg == "--print" && Next(Val))
      Prints = Val;
    else
      return usage(Argv[0]);
  }
  if (MachinePath.empty() || LoopPath.empty())
    return usage(Argv[0]);
  if (Mapping != "fixed" && Mapping != "runtime")
    return usage(Argv[0]);

  std::string MachineText, LoopText, Err;
  if (!readFile(MachinePath, MachineText)) {
    std::fprintf(stderr, "error: cannot read machine file %s\n",
                 MachinePath.c_str());
    return 1;
  }
  if (!readFile(LoopPath, LoopText)) {
    std::fprintf(stderr, "error: cannot read loop file %s\n",
                 LoopPath.c_str());
    return 1;
  }

  MachineModel Machine;
  if (!parseMachine(MachineText, Machine, Err)) {
    std::fprintf(stderr, "error: %s: %s\n", MachinePath.c_str(), Err.c_str());
    return 1;
  }
  Ddg Loop;
  if (!parseLoop(LoopText, Machine, Loop, Err)) {
    std::fprintf(stderr, "error: %s: %s\n", LoopPath.c_str(), Err.c_str());
    return 1;
  }

  if (wantArtifact(Prints, "machine"))
    std::printf("%s\n", printMachine(Machine).c_str());
  if (wantArtifact(Prints, "loop"))
    std::printf("%s\n", printLoop(Loop, Machine).c_str());
  if (wantArtifact(Prints, "dot"))
    std::printf("%s\n", toDot(Loop).c_str());

  ModuloSchedule Schedule;
  int TLb = 0;
  bool Proven = false;
  if (Scheduler == "ilp") {
    SchedulerOptions Opts;
    Opts.TimeLimitPerT = TimeLimit;
    Opts.Mapping = Mapping == "fixed" ? MappingKind::Fixed
                                      : MappingKind::RunTime;
    Opts.MinimizeBuffers = MinBuffers;
    SchedulerResult R = scheduleLoop(Loop, Machine, Opts);
    TLb = R.TLowerBound;
    Proven = R.ProvenRateOptimal;
    if (R.found())
      Schedule = std::move(R.Schedule);
  } else if (Scheduler == "ims") {
    ImsResult R = iterativeModuloSchedule(Loop, Machine);
    TLb = R.TLowerBound;
    if (R.found())
      Schedule = std::move(R.Schedule);
  } else if (Scheduler == "slack") {
    SlackResult R = slackModuloSchedule(Loop, Machine);
    TLb = R.TLowerBound;
    if (R.found())
      Schedule = std::move(R.Schedule);
  } else if (Scheduler == "enum") {
    EnumOptions Opts;
    Opts.TimeLimitPerT = TimeLimit;
    EnumResult R = enumerativeSchedule(Loop, Machine, Opts);
    TLb = R.TLowerBound;
    Proven = R.ProvenRateOptimal;
    if (R.found())
      Schedule = std::move(R.Schedule);
  } else {
    return usage(Argv[0]);
  }

  if (Schedule.T == 0) {
    std::fprintf(stderr, "no schedule found (T_lb = %d)\n", TLb);
    return 1;
  }
  VerifyResult V = verifySchedule(Loop, Machine, Schedule);
  if (!V.Ok) {
    std::fprintf(stderr, "internal error: schedule fails verification: %s\n",
                 V.Error.c_str());
    return 1;
  }

  std::printf("loop %s on machine %s: II = %d (T_dep %d, T_res %d)%s\n",
              Loop.name().c_str(), Machine.name().c_str(), Schedule.T,
              recurrenceMii(Loop), Machine.resourceMii(Loop),
              Proven ? ", proven rate-optimal" : "");
  if (Schedule.hasMapping()) {
    std::printf("mapping:");
    for (int I = 0; I < Loop.numNodes(); ++I)
      std::printf(" %s->%s#%d", Loop.node(I).Name.c_str(),
                  Machine.type(Loop.node(I).OpClass).Name.c_str(),
                  Schedule.Mapping[static_cast<size_t>(I)]);
    std::printf("\n");
  }
  std::printf("buffers = %d, maxlive = %d\n", totalBuffers(Loop, Schedule),
              maxLive(Loop, Schedule));

  if (wantArtifact(Prints, "tka"))
    std::printf("\n%s", Schedule.renderTka().c_str());
  if (wantArtifact(Prints, "kernel"))
    std::printf("\n%s",
                renderOverlappedIterations(Loop, Schedule, Iterations)
                    .c_str());
  if (wantArtifact(Prints, "usage"))
    std::printf("\n%s", Schedule.renderPatternUsage(Loop, Machine).c_str());
  if (wantArtifact(Prints, "lifetimes"))
    std::printf("\n%s", renderLifetimes(Loop, Schedule).c_str());
  if (wantArtifact(Prints, "arcs")) {
    for (int R = 0; R < Machine.numTypes(); ++R) {
      std::vector<int> Ops = Loop.nodesOfClass(R);
      if (Ops.size() < 2)
        continue;
      std::vector<int> Offsets, Colors;
      for (int Op : Ops) {
        Offsets.push_back(Schedule.offset(Op));
        Colors.push_back(Schedule.hasMapping()
                             ? Schedule.Mapping[static_cast<size_t>(Op)]
                             : 0);
      }
      std::printf("\n%s", renderArcs(Loop, Machine, R, Schedule.T, Offsets,
                                     Colors)
                              .c_str());
    }
  }
  return 0;
}
