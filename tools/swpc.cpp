//===- swpc.cpp - Command-line software pipeliner -------------------------===//
//
// swpc: schedule a loop from text files on a machine description.
//
//   swpc --machine M.machine --loop L.loop [options]
//   swpc --machine M.machine --batch DIR [--jobs N] [options]
//
// --machine also accepts a built-in catalog name (--list-machines), e.g.
// --machine cgra-mesh-4x4.
//
// Options:
//   --scheduler ilp|sat|race|portfolio|ims|slack|enum
//                                    algorithm (default ilp); sat is the
//                                    CDCL backend with incremental per-T
//                                    re-solving, race runs ilp and sat
//                                    concurrently with cross-cancellation
//   --mapping fixed|runtime          mapping discipline (default fixed)
//   --min-buffers                    buffer-minimal schedule (ilp only)
//   --time-limit SECONDS             per-T MILP/search limit (default 10)
//   --deadline SECONDS               per-loop wall-clock deadline
//   --batch DIR                      schedule every *.loop file in DIR
//   --jobs N                         worker threads in batch mode (default
//                                    hardware concurrency)
//   --format text|json               summary format; json emits one object
//                                    per loop (T, T_lb, proven, seconds,
//                                    nodes) on stdout
//   --iterations N                   iterations in kernel listings (4)
//   --print WHAT[,WHAT...]           tka, kernel, usage, arcs, lifetimes,
//                                    dot, loop, machine (default summary)
//
// Batch mode feeds the loops through the SchedulerService thread pool
// (service statistics go to stderr so a json stdout stream stays clean).
// --save-cache/--load-cache persist the service's result cache around a
// batch run, pre-baking warm capacity for the daemon.
//
// Client mode talks to a running swpd daemon instead of solving locally:
//
//   swpc --connect SOCKET --machine M --loop L [--tenant NAME] [options]
//   swpc --connect SOCKET --machine M --batch DIR [...]
//   swpc --connect SOCKET --daemon-stats
//   swpc --connect SOCKET --shutdown
//
// Exit codes in client mode: 0 all solved, 3 some requests shed by load
// control (none failed), 1 anything unsolved/errored or transport failure.
//
//===----------------------------------------------------------------------===//

#include "swp/core/CircularArcs.h"
#include "swp/core/Driver.h"
#include "swp/core/KernelExpander.h"
#include "swp/core/Registers.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/ddg/Dot.h"
#include "swp/heuristics/Enumerative.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/heuristics/SlackModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/net/Client.h"
#include "swp/service/CachePersist.h"
#include "swp/service/SchedulerService.h"
#include "swp/service/ServiceStats.h"
#include "swp/support/Format.h"
#include "swp/support/Stopwatch.h"
#include "swp/textio/Parser.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace swp;

namespace {

/// --list-machines: the built-in catalog, one line per machine with its
/// FU layout and (when present) topology summary.
int listMachines() {
  for (const CatalogEntry &E : machineCatalog()) {
    MachineModel M = E.Build();
    std::string Fus;
    for (int R = 0; R < M.numTypes(); ++R) {
      if (!Fus.empty())
        Fus += ", ";
      const FuType &Ty = M.type(R);
      Fus += strFormat("%s x%d", Ty.Name.c_str(), Ty.Count);
      if (Ty.numVariants() > 1)
        Fus += strFormat(" (%d variants)", Ty.numVariants());
    }
    std::printf("%-22s %s", E.Name.c_str(), Fus.c_str());
    if (const Topology *Topo = M.topology()) {
      std::printf("  [topology: %d units, %d edges, hoplat %d, maxhops ",
                  Topo->numUnits(), static_cast<int>(Topo->edges().size()),
                  Topo->hopLatency());
      if (Topo->maxHops() < 0)
        std::printf("inf]");
      else
        std::printf("%d]", Topo->maxHops());
    }
    std::printf("\n");
  }
  return 0;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --machine FILE|NAME (--loop FILE | --batch DIR)\n"
               "       [--scheduler ilp|sat|race|portfolio|ims|slack|enum]\n"
               "       [--mapping fixed|runtime] [--min-buffers] "
               "[--time-limit S]\n"
               "       [--deadline S] [--jobs N] [--format text|json]\n"
               "       [--iterations N] [--print tka,kernel,usage,arcs,"
               "lifetimes,dot,loop,machine]\n"
               "       [--save-cache DIR] [--load-cache DIR]\n"
               "   or: %s --connect SOCKET (--machine FILE (--loop FILE |"
               " --batch DIR)\n"
               "        [--tenant NAME] | --daemon-stats | --shutdown)\n"
               "   or: %s --list-machines\n",
               Argv0, Argv0, Argv0);
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

/// --machine accepts a file path or a catalog name (see --list-machines);
/// catalog machines are materialized through the printer so both sources
/// flow through the same parser.
bool readMachineSpec(const std::string &Spec, std::string &Out) {
  if (readFile(Spec, Out))
    return true;
  MachineModel M(Spec);
  if (!buildCatalogMachine(Spec, M))
    return false;
  Out = printMachine(M);
  return true;
}

bool wantArtifact(const std::string &Prints, const char *What) {
  size_t Pos = 0;
  while (Pos < Prints.size()) {
    size_t Comma = Prints.find(',', Pos);
    std::string Item = Prints.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Item == What)
      return true;
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return false;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    if (static_cast<unsigned char>(C) < 0x20) {
      Out += strFormat("\\u%04x", C);
      continue;
    }
    Out.push_back(C);
  }
  return Out;
}

/// One summary object per loop: the ISSUE's (T, T_lb, proven, seconds,
/// nodes) plus the loop name and the flags a batch consumer needs to
/// triage failures.
std::string resultJson(const std::string &Name, const SchedulerResult &R) {
  return strFormat("{\"loop\":\"%s\",\"T\":%d,\"T_lb\":%d,\"proven\":%s,"
                   "\"seconds\":%.6f,\"nodes\":%lld,\"cancelled\":%s,"
                   "\"verify_failed\":%s}",
                   jsonEscape(Name).c_str(), R.Schedule.T, R.TLowerBound,
                   R.ProvenRateOptimal ? "true" : "false", R.TotalSeconds,
                   static_cast<long long>(R.TotalNodes),
                   R.Cancelled ? "true" : "false",
                   R.VerifyFailed ? "true" : "false");
}

std::string resultText(const std::string &Name, const SchedulerResult &R) {
  if (!R.found())
    return strFormat("%s: no schedule (T_lb %d)%s", Name.c_str(),
                     R.TLowerBound, R.Cancelled ? ", cancelled" : "");
  return strFormat("%s: II = %d (T_lb %d)%s, %.3fs, %lld nodes",
                   Name.c_str(), R.Schedule.T, R.TLowerBound,
                   R.ProvenRateOptimal ? ", proven rate-optimal" : "",
                   R.TotalSeconds, static_cast<long long>(R.TotalNodes));
}

std::string connectResultJson(const std::string &Name,
                              const net::ScheduleResponseMsg &Resp) {
  const SchedulerResult &R = Resp.Result;
  return strFormat(
      "{\"loop\":\"%s\",\"outcome\":\"%s\",\"degradation\":\"%s\","
      "\"cache_hit\":%s,\"fallback\":\"%s\",\"T\":%d,\"T_lb\":%d,"
      "\"proven\":%s,\"seconds\":%.6f,\"reason\":\"%s\"}",
      jsonEscape(Name).c_str(), net::responseOutcomeName(Resp.Outcome),
      degradationLevelName(Resp.Degradation),
      R.CacheHit ? "true" : "false", fallbackRungName(R.Fallback),
      R.Schedule.T, R.TLowerBound, R.ProvenRateOptimal ? "true" : "false",
      R.TotalSeconds, jsonEscape(Resp.Reason).c_str());
}

std::string connectResultText(const std::string &Name,
                              const net::ScheduleResponseMsg &Resp) {
  if (Resp.Outcome == net::ResponseOutcome::Shed)
    return strFormat("%s: shed (%s)", Name.c_str(), Resp.Reason.c_str());
  if (Resp.Outcome == net::ResponseOutcome::Error)
    return strFormat("%s: error (%s)", Name.c_str(), Resp.Reason.c_str());
  std::string Line = resultText(Name, Resp.Result);
  if (Resp.Result.CacheHit)
    Line += " [cache hit]";
  if (Resp.Degradation != DegradationLevel::None)
    Line += strFormat(" [degraded: %s]",
                      degradationLevelName(Resp.Degradation));
  if (Resp.Result.Fallback != FallbackRung::None)
    Line += strFormat(" [fallback: %s]",
                      fallbackRungName(Resp.Result.Fallback));
  return Line;
}

/// Client mode: send every loop to the daemon over one connection.
int runConnect(const std::string &SocketPath, const std::string &Tenant,
               const std::string &Scheduler, double Deadline,
               const std::string &MachineText,
               const std::vector<std::pair<std::string, std::string>> &Loops,
               const std::string &Format, bool WantStats, bool WantShutdown) {
  Expected<net::DaemonClient> Client = net::DaemonClient::connect(SocketPath);
  if (!Client.ok()) {
    std::fprintf(stderr, "error: %s\n", Client.status().str().c_str());
    return 1;
  }

  bool AnyBad = false, AnyShed = false;
  for (const auto &[Name, LoopText] : Loops) {
    net::ScheduleRequestMsg Req;
    Req.Tenant = Tenant;
    Req.Scheduler = Scheduler;
    Req.DeadlineSeconds = Deadline;
    Req.MachineText = MachineText;
    Req.LoopText = LoopText;
    Expected<net::ScheduleResponseMsg> Resp = Client->schedule(Req);
    if (!Resp.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", Name.c_str(),
                   Resp.status().str().c_str());
      return 1;
    }
    std::printf("%s\n", Format == "json"
                            ? connectResultJson(Name, *Resp).c_str()
                            : connectResultText(Name, *Resp).c_str());
    switch (Resp->Outcome) {
    case net::ResponseOutcome::Solved:
      break;
    case net::ResponseOutcome::Shed:
      AnyShed = true;
      break;
    case net::ResponseOutcome::Unsolved:
    case net::ResponseOutcome::Error:
      AnyBad = true;
      break;
    }
  }

  if (WantStats) {
    Expected<std::string> Stats = Client->statsText();
    if (!Stats.ok()) {
      std::fprintf(stderr, "error: %s\n", Stats.status().str().c_str());
      return 1;
    }
    std::fprintf(stderr, "%s\n", Stats->c_str());
  }
  if (WantShutdown) {
    if (Status St = Client->requestShutdown(); !St.isOk()) {
      std::fprintf(stderr, "error: %s\n", St.str().c_str());
      return 1;
    }
  }
  return AnyBad ? 1 : AnyShed ? 3 : 0;
}

int runBatch(const std::string &BatchDir, const MachineModel &Machine,
             const ServiceOptions &SvcOpts, const std::string &Format,
             const std::string &LoadCacheDir,
             const std::string &SaveCacheDir) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  std::vector<fs::path> Files;
  for (fs::directory_iterator It(BatchDir, Ec), End; !Ec && It != End;
       It.increment(Ec))
    if (It->is_regular_file() && It->path().extension() == ".loop")
      Files.push_back(It->path());
  if (Ec) {
    std::fprintf(stderr, "error: cannot scan %s: %s\n", BatchDir.c_str(),
                 Ec.message().c_str());
    return 1;
  }
  if (Files.empty()) {
    std::fprintf(stderr, "error: no *.loop files in %s\n", BatchDir.c_str());
    return 1;
  }
  std::sort(Files.begin(), Files.end());

  std::vector<Ddg> Loops;
  std::vector<std::string> Names;
  for (const fs::path &P : Files) {
    std::string Text, Err;
    if (!readFile(P.string(), Text)) {
      std::fprintf(stderr, "error: cannot read loop file %s\n",
                   P.string().c_str());
      return 1;
    }
    Ddg Loop;
    if (!parseLoop(Text, Machine, Loop, Err)) {
      std::fprintf(stderr, "error: %s: %s\n", P.string().c_str(),
                   Err.c_str());
      return 1;
    }
    Names.push_back(Loop.name().empty() ? P.stem().string() : Loop.name());
    Loops.push_back(std::move(Loop));
  }

  auto Cache = std::make_shared<ResultCache>();
  if (!LoadCacheDir.empty()) {
    Expected<SnapshotLoadStats> Loaded = loadCacheSnapshot(*Cache,
                                                           LoadCacheDir);
    if (!Loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", Loaded.status().str().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %zu cached results (%zu corrupt shards "
                         "discarded)\n",
                 Loaded->Entries, Loaded->CorruptShards);
  }
  SchedulerService Svc(Machine, SvcOpts, Cache);
  Stopwatch Wall;
  std::vector<SchedulerResult> Results = Svc.scheduleAll(Loops);
  double WallSeconds = Wall.seconds();

  if (!SaveCacheDir.empty()) {
    Expected<SnapshotSaveStats> Saved = saveCacheSnapshot(*Cache,
                                                          SaveCacheDir);
    if (!Saved.ok()) {
      std::fprintf(stderr, "error: %s\n", Saved.status().str().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved %zu cached results (%zu bytes)\n",
                 Saved->Entries, Saved->Bytes);
  }

  bool AnyMissing = false;
  for (size_t I = 0; I < Results.size(); ++I) {
    const SchedulerResult &R = Results[I];
    AnyMissing |= !R.found();
    std::printf("%s\n", Format == "json"
                            ? resultJson(Names[I], R).c_str()
                            : resultText(Names[I], R).c_str());
  }

  ServiceStats Stats = Svc.stats();
  std::fprintf(stderr, "\n%zu loops in %.3fs wall (%d worker threads)\n\n%s",
               Results.size(), WallSeconds, Stats.Jobs,
               Stats.render().c_str());
  return AnyMissing ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string MachinePath, LoopPath, BatchDir, Scheduler = "ilp";
  std::string Mapping = "fixed", Format = "text", Prints;
  std::string ConnectPath, Tenant = "default";
  std::string SaveCacheDir, LoadCacheDir;
  bool MinBuffers = false, DaemonStats = false, Shutdown = false;
  double TimeLimit = 10.0, Deadline = 0.0;
  int Iterations = 4, Jobs = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    std::string Val;
    if (Arg == "--machine" && Next(Val))
      MachinePath = Val;
    else if (Arg == "--loop" && Next(Val))
      LoopPath = Val;
    else if (Arg == "--batch" && Next(Val))
      BatchDir = Val;
    else if (Arg == "--jobs" && Next(Val))
      Jobs = std::atoi(Val.c_str());
    else if (Arg == "--scheduler" && Next(Val))
      Scheduler = Val;
    else if (Arg == "--mapping" && Next(Val))
      Mapping = Val;
    else if (Arg == "--min-buffers")
      MinBuffers = true;
    else if (Arg == "--time-limit" && Next(Val))
      TimeLimit = std::atof(Val.c_str());
    else if (Arg == "--deadline" && Next(Val))
      Deadline = std::atof(Val.c_str());
    else if (Arg == "--format" && Next(Val))
      Format = Val;
    else if (Arg == "--iterations" && Next(Val))
      Iterations = std::atoi(Val.c_str());
    else if (Arg == "--print" && Next(Val))
      Prints = Val;
    else if (Arg == "--connect" && Next(Val))
      ConnectPath = Val;
    else if (Arg == "--tenant" && Next(Val))
      Tenant = Val;
    else if (Arg == "--daemon-stats")
      DaemonStats = true;
    else if (Arg == "--shutdown")
      Shutdown = true;
    else if (Arg == "--save-cache" && Next(Val))
      SaveCacheDir = Val;
    else if (Arg == "--load-cache" && Next(Val))
      LoadCacheDir = Val;
    else if (Arg == "--list-machines")
      return listMachines();
    else
      return usage(Argv[0]);
  }
  if (!ConnectPath.empty()) {
    // Client mode: loops are optional when only stats/shutdown is wanted.
    bool HasWork = !LoopPath.empty() || !BatchDir.empty();
    if (HasWork && (MachinePath.empty() || !LoopPath.empty() == !BatchDir.empty()))
      return usage(Argv[0]);
    if (!HasWork && !DaemonStats && !Shutdown)
      return usage(Argv[0]);
    if (Format != "text" && Format != "json")
      return usage(Argv[0]);

    std::string MachineText;
    std::vector<std::pair<std::string, std::string>> Loops;
    if (HasWork) {
      if (!readMachineSpec(MachinePath, MachineText)) {
        std::fprintf(stderr,
                     "error: %s is neither a readable machine file nor a "
                     "catalog name (see --list-machines)\n",
                     MachinePath.c_str());
        return 1;
      }
      if (!LoopPath.empty()) {
        std::string Text;
        if (!readFile(LoopPath, Text)) {
          std::fprintf(stderr, "error: cannot read loop file %s\n",
                       LoopPath.c_str());
          return 1;
        }
        Loops.emplace_back(std::filesystem::path(LoopPath).stem().string(),
                           std::move(Text));
      } else {
        namespace fs = std::filesystem;
        std::error_code Ec;
        std::vector<fs::path> Files;
        for (fs::directory_iterator It(BatchDir, Ec), End; !Ec && It != End;
             It.increment(Ec))
          if (It->is_regular_file() && It->path().extension() == ".loop")
            Files.push_back(It->path());
        std::sort(Files.begin(), Files.end());
        if (Files.empty()) {
          std::fprintf(stderr, "error: no *.loop files in %s\n",
                       BatchDir.c_str());
          return 1;
        }
        for (const fs::path &P : Files) {
          std::string Text;
          if (!readFile(P.string(), Text)) {
            std::fprintf(stderr, "error: cannot read loop file %s\n",
                         P.string().c_str());
            return 1;
          }
          Loops.emplace_back(P.stem().string(), std::move(Text));
        }
      }
    }
    return runConnect(ConnectPath, Tenant, Scheduler, Deadline, MachineText,
                      Loops, Format, DaemonStats, Shutdown);
  }
  if (MachinePath.empty() || (LoopPath.empty() == BatchDir.empty()))
    return usage(Argv[0]);
  if (Mapping != "fixed" && Mapping != "runtime")
    return usage(Argv[0]);
  if (Format != "text" && Format != "json")
    return usage(Argv[0]);

  std::string MachineText, Err;
  if (!readMachineSpec(MachinePath, MachineText)) {
    std::fprintf(stderr,
                 "error: %s is neither a readable machine file nor a "
                 "catalog name (see --list-machines)\n",
                 MachinePath.c_str());
    return 1;
  }
  MachineModel Machine;
  if (!parseMachine(MachineText, Machine, Err)) {
    std::fprintf(stderr, "error: %s: %s\n", MachinePath.c_str(), Err.c_str());
    return 1;
  }

  SchedulerOptions SchedOpts;
  SchedOpts.TimeLimitPerT = TimeLimit;
  SchedOpts.Mapping = Mapping == "fixed" ? MappingKind::Fixed
                                         : MappingKind::RunTime;
  SchedOpts.MinimizeBuffers = MinBuffers;

  if (!BatchDir.empty()) {
    if (Scheduler != "ilp" && Scheduler != "sat" && Scheduler != "race" &&
        Scheduler != "portfolio") {
      std::fprintf(
          stderr,
          "error: --batch supports --scheduler ilp|sat|race|portfolio\n");
      return 2;
    }
    ServiceOptions SvcOpts;
    SvcOpts.Jobs = Jobs;
    SvcOpts.Sched = SchedOpts;
    SvcOpts.Portfolio = Scheduler == "portfolio";
    if (Scheduler == "sat")
      SvcOpts.Engine = ExactEngine::Sat;
    else if (Scheduler == "race")
      SvcOpts.Engine = ExactEngine::Race;
    SvcOpts.DeadlinePerLoop = Deadline;
    return runBatch(BatchDir, Machine, SvcOpts, Format, LoadCacheDir,
                    SaveCacheDir);
  }

  std::string LoopText;
  if (!readFile(LoopPath, LoopText)) {
    std::fprintf(stderr, "error: cannot read loop file %s\n",
                 LoopPath.c_str());
    return 1;
  }
  Ddg Loop;
  if (!parseLoop(LoopText, Machine, Loop, Err)) {
    std::fprintf(stderr, "error: %s: %s\n", LoopPath.c_str(), Err.c_str());
    return 1;
  }

  // Batch mode hands the deadline to the service per loop; here the one
  // loop gets it directly via the scheduler's cancellation token.
  CancellationSource DeadlineSource;
  if (Deadline > 0) {
    DeadlineSource.setDeadlineAfter(Deadline);
    SchedOpts.Cancel = DeadlineSource.token();
  }

  if (wantArtifact(Prints, "machine"))
    std::printf("%s\n", printMachine(Machine).c_str());
  if (wantArtifact(Prints, "loop"))
    std::printf("%s\n", printLoop(Loop, Machine).c_str());
  if (wantArtifact(Prints, "dot"))
    std::printf("%s\n", toDot(Loop).c_str());

  ModuloSchedule Schedule;
  int TLb = 0;
  bool Proven = false;
  double Seconds = 0.0;
  std::int64_t Nodes = 0;
  bool Cancelled = false, VerifyFailed = false;
  if (Scheduler == "ilp" || Scheduler == "sat" || Scheduler == "race" ||
      Scheduler == "portfolio") {
    SchedulerResult R;
    if (Scheduler == "portfolio")
      R = portfolioSchedule(Loop, Machine, SchedOpts);
    else if (Scheduler == "sat")
      R = exactSchedule(Loop, Machine, SchedOpts, ExactEngine::Sat);
    else if (Scheduler == "race")
      R = exactSchedule(Loop, Machine, SchedOpts, ExactEngine::Race);
    else
      R = scheduleLoop(Loop, Machine, SchedOpts);
    TLb = R.TLowerBound;
    Proven = R.ProvenRateOptimal;
    Seconds = R.TotalSeconds;
    Nodes = R.TotalNodes;
    Cancelled = R.Cancelled;
    VerifyFailed = R.VerifyFailed;
    if (R.found())
      Schedule = std::move(R.Schedule);
  } else if (Scheduler == "ims") {
    ImsResult R = iterativeModuloSchedule(Loop, Machine);
    TLb = R.TLowerBound;
    if (R.found())
      Schedule = std::move(R.Schedule);
  } else if (Scheduler == "slack") {
    SlackResult R = slackModuloSchedule(Loop, Machine);
    TLb = R.TLowerBound;
    if (R.found())
      Schedule = std::move(R.Schedule);
  } else if (Scheduler == "enum") {
    EnumOptions Opts;
    Opts.TimeLimitPerT = TimeLimit;
    EnumResult R = enumerativeSchedule(Loop, Machine, Opts);
    TLb = R.TLowerBound;
    Proven = R.ProvenRateOptimal;
    if (R.found())
      Schedule = std::move(R.Schedule);
  } else {
    return usage(Argv[0]);
  }

  if (Format == "json") {
    SchedulerResult Summary;
    Summary.Schedule = Schedule;
    Summary.TLowerBound = TLb;
    Summary.ProvenRateOptimal = Proven;
    Summary.TotalSeconds = Seconds;
    Summary.TotalNodes = Nodes;
    Summary.Cancelled = Cancelled;
    Summary.VerifyFailed = VerifyFailed;
    std::printf("%s\n", resultJson(Loop.name(), Summary).c_str());
    if (Schedule.T == 0)
      return 1;
    VerifyResult V = verifySchedule(Loop, Machine, Schedule);
    return V.Ok ? 0 : 1;
  }

  if (Schedule.T == 0) {
    std::fprintf(stderr, "no schedule found (T_lb = %d)\n", TLb);
    return 1;
  }
  VerifyResult V = verifySchedule(Loop, Machine, Schedule);
  if (!V.Ok) {
    std::fprintf(stderr, "internal error: schedule fails verification: %s\n",
                 V.Error.c_str());
    return 1;
  }

  std::printf("loop %s on machine %s: II = %d (T_dep %d, T_res %d)%s\n",
              Loop.name().c_str(), Machine.name().c_str(), Schedule.T,
              recurrenceMii(Loop), Machine.resourceMii(Loop),
              Proven ? ", proven rate-optimal" : "");
  if (Schedule.hasMapping()) {
    std::printf("mapping:");
    for (int I = 0; I < Loop.numNodes(); ++I)
      std::printf(" %s->%s#%d", Loop.node(I).Name.c_str(),
                  Machine.type(Loop.node(I).OpClass).Name.c_str(),
                  Schedule.Mapping[static_cast<size_t>(I)]);
    std::printf("\n");
  }
  std::printf("buffers = %d, maxlive = %d\n", totalBuffers(Loop, Schedule),
              maxLive(Loop, Schedule));

  if (wantArtifact(Prints, "tka"))
    std::printf("\n%s", Schedule.renderTka().c_str());
  if (wantArtifact(Prints, "kernel"))
    std::printf("\n%s",
                renderOverlappedIterations(Loop, Schedule, Iterations)
                    .c_str());
  if (wantArtifact(Prints, "usage"))
    std::printf("\n%s", Schedule.renderPatternUsage(Loop, Machine).c_str());
  if (wantArtifact(Prints, "lifetimes"))
    std::printf("\n%s", renderLifetimes(Loop, Schedule).c_str());
  if (wantArtifact(Prints, "arcs")) {
    for (int R = 0; R < Machine.numTypes(); ++R) {
      std::vector<int> Ops = Loop.nodesOfClass(R);
      if (Ops.size() < 2)
        continue;
      std::vector<int> Offsets, Colors;
      for (int Op : Ops) {
        Offsets.push_back(Schedule.offset(Op));
        Colors.push_back(Schedule.hasMapping()
                             ? Schedule.Mapping[static_cast<size_t>(Op)]
                             : 0);
      }
      std::printf("\n%s", renderArcs(Loop, Machine, R, Schedule.T, Offsets,
                                     Colors)
                              .c_str());
    }
  }
  return 0;
}
