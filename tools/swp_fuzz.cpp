//===- swp_fuzz.cpp - Differential fuzzer for the scheduling stack --------===//
//
// Generates random DDGs on random reservation-table machines and runs every
// scheduler path over each instance:
//
//   - rate-optimal ILP (scheduleLoop), with and without the LP-rounding
//     probe (two independent routes to the same proofs),
//   - iterative-modulo and slack-modulo heuristics,
//   - the portfolio race.
//
// Every schedule any path produces is checked by the static verifier AND
// replayed on the cycle-accurate dynamic simulator; the paths are then
// cross-checked against each other (a heuristic can never beat a proven
// rate-optimal T, two proven ILP runs must agree, a clean full-window
// infeasibility proof means the heuristics find nothing either).  Machine
// and loop text formats are round-tripped through the parser as a bonus
// differential.
//
// With --faults SPEC the fault injector is armed per instance (seeded
// deterministically from the instance seed) and the harness additionally
// proves the failure-domain guarantee: a faulted run either returns a
// verified schedule or an explicit unfound result with a populated
// SearchStop chain, and any rate-optimality claim it makes survives a
// fault-free re-solve.
//
// With --mode ilp-vs-sat the harness becomes a two-engine differential:
// the branch-and-bound ILP and the CDCL SAT backend solve every instance
// and their answers are cross-checked — both schedules verified and
// replayed, proven-optimal IIs must agree exactly, neither engine may beat
// the other's proven optimum, and a clean full-window infeasibility proof
// from one engine forbids the other from finding anything in the window.
//
// With --mode warmstart the harness solves every instance twice — once
// with the LP warm starts across candidate T (and the basis carried into
// branch-and-bound) and once with cold rebuilds — and cross-checks the
// two runs: a warm basis may change which vertex the simplex lands on,
// never the answer.  When neither run was censored by a limit the whole
// per-T status chain must match exactly; proofs and found IIs are
// cross-checked either way, and both schedules are verified and replayed.
//
// With --mode cgra the harness fuzzes the topology-aware mapping path:
// random small PE grids (mesh or torus, bounded hop budgets) with random
// dataflow kernels; the two exact engines are cross-checked as in
// ilp-vs-sat, the heuristics' schedules are verified and replayed and may
// never beat a proven optimum, and the grid machine text must round-trip.
//
// With --mode wire the harness fuzzes the swpd wire protocol instead of
// the schedulers: random requests and responses (arbitrary byte strings,
// NaN/infinity doubles, every enum value) must round-trip byte-exactly
// through the message codecs and the frame codec, every truncation of a
// frame must be rejected, and every single-bit flip anywhere in a frame —
// header or payload — must be caught by one of the two CRCs.  The bit-flip
// and truncation sweeps are exhaustive per instance, not sampled.
//
//   swp_fuzz --instances 10000 --seed 1            # acceptance run
//   swp_fuzz --instances 10000 --seed 1 --mode ilp-vs-sat
//   swp_fuzz --instances 10000 --seed 1 --mode warmstart
//   swp_fuzz --instances 10000 --seed 1 --mode cgra
//   swp_fuzz --instances 2000 --seed 1 --mode wire
//   swp_fuzz --instances 200 --faults "lp-infeasible:p0.1,bnb-node:p0.05"
//
// Exit status: 0 = no findings, 1 = findings (each printed with a full
// machine/loop dump for replay), 2 = bad usage.
//
//===----------------------------------------------------------------------===//

#include "swp/core/Driver.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Ddg.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/heuristics/SlackModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/machine/MachineModel.h"
#include "swp/net/Wire.h"
#include "swp/sat/SatScheduler.h"
#include "swp/workload/Corpus.h"
#include "swp/service/SchedulerService.h"
#include "swp/sim/DynamicSimulator.h"
#include "swp/support/FaultInjector.h"
#include "swp/support/Rng.h"
#include "swp/support/Stopwatch.h"
#include "swp/textio/Parser.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

using namespace swp;

namespace {

struct FuzzOptions {
  int Instances = 1000;
  std::uint64_t Seed = 1;
  int MaxNodes = 10;
  /// "all" = every scheduler path; "ilp-vs-sat" = two-engine differential;
  /// "warmstart" = warm vs cold-rebuild LP differential; "wire" = swpd
  /// frame/message codec round trips and corruption rejection.
  std::string Mode = "all";
  std::string FaultSpec;
  double TimeLimitPerT = 0.05;
  std::int64_t NodeLimitPerT = 1500;
  int MaxTSlack = 4;
  /// Exercise the SchedulerService path every this many instances (0 off).
  int ServiceEvery = 64;
  bool Verbose = false;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--instances N] [--seed S] [--max-nodes N]\n"
               "       [--mode all|ilp-vs-sat|warmstart|cgra|wire] [--faults SPEC]\n"
               "       [--time-limit S] [--node-limit N]\n"
               "       [--max-t-slack N] [--service-every N] [--verbose]\n",
               Argv0);
  return 2;
}

std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// A random machine: 1-4 FU types, each 1-3 units, reservation tables with
/// 1-3 stages over 1-5 cycles and ~45% busy cells, occasionally with extra
/// multi-function variants.  Every table keeps at least one busy cell so
/// the instance is not degenerate.
MachineModel randomMachine(Rng &R) {
  MachineModel M("fuzz");
  int NumTypes = R.intIn(1, 4);
  for (int T = 0; T < NumTypes; ++T) {
    auto RandomTable = [&R]() {
      int Stages = R.intIn(1, 3);
      int Cols = R.intIn(1, 5);
      std::vector<std::vector<std::uint8_t>> Rows(
          static_cast<size_t>(Stages),
          std::vector<std::uint8_t>(static_cast<size_t>(Cols), 0));
      bool AnyBusy = false;
      for (auto &Row : Rows)
        for (auto &Cell : Row) {
          Cell = R.chance(0.45) ? 1 : 0;
          AnyBusy = AnyBusy || Cell;
        }
      if (!AnyBusy)
        Rows[0][0] = 1;
      return ReservationTable(std::move(Rows));
    };
    int Type = M.addFuType("fu" + std::to_string(T), R.intIn(1, 3),
                           RandomTable());
    while (R.chance(0.25))
      M.addVariant(Type, RandomTable());
  }
  // ~25% of machines carry a random placement topology over all units
  // (possibly vacuous, possibly with unreachable pairs — both are legal
  // and must keep every cross-check honest).
  if (R.chance(0.25)) {
    int Units = M.totalUnits();
    Topology Topo(Units);
    for (int A = 0; A < Units; ++A)
      for (int B = 0; B < Units; ++B)
        if (A != B && R.chance(0.5))
          Topo.addEdge(A, B);
    Topo.setHopLatency(R.intIn(1, 2));
    Topo.setMaxHops(R.chance(0.3) ? -1 : R.intIn(1, 2));
    M.setTopology(std::move(Topo));
  }
  return M;
}

/// A random well-formed DDG for \p Machine: forward edges carry distance 0,
/// back/self edges distance >= 1, so no zero-distance cycle can form.
Ddg randomLoop(Rng &R, const MachineModel &Machine, int MaxNodes,
               std::uint64_t InstanceSeed) {
  Ddg G;
  G.setName("fuzz" + std::to_string(InstanceSeed));
  int N = R.intIn(2, MaxNodes);
  for (int I = 0; I < N; ++I) {
    int Class = R.intIn(0, Machine.numTypes() - 1);
    int Variant = R.intIn(0, Machine.type(Class).numVariants() - 1);
    G.addNodeVariant("n" + std::to_string(I), Class, Variant, R.intIn(0, 5));
  }
  for (int J = 1; J < N; ++J) {
    int Degree = R.intIn(0, 2);
    for (int E = 0; E < Degree; ++E)
      G.addEdge(R.intIn(0, J - 1), J, 0);
  }
  if (R.chance(0.4)) {
    int Dst = R.intIn(0, N - 1);
    int Src = R.intIn(Dst, N - 1);
    G.addEdge(Src, Dst, R.intIn(1, 2));
  }
  return G;
}

/// One reportable finding; carries everything needed to replay.
struct Findings {
  int Count = 0;

  void report(std::uint64_t InstanceSeed, const MachineModel &Machine,
              const Ddg &G, const std::string &What) {
    ++Count;
    std::fprintf(stderr, "FINDING (instance seed %llu): %s\n",
                 static_cast<unsigned long long>(InstanceSeed), What.c_str());
    std::fprintf(stderr, "--- machine\n%s--- loop\n%s---\n",
                 printMachine(Machine).c_str(),
                 printLoop(G, Machine).c_str());
  }

  /// Wire-mode findings have no machine/loop to dump; the instance seed
  /// alone replays them.
  void report(std::uint64_t InstanceSeed, const std::string &What) {
    ++Count;
    std::fprintf(stderr, "FINDING (instance seed %llu): %s\n",
                 static_cast<unsigned long long>(InstanceSeed), What.c_str());
  }
};

/// Verifier + simulator check of one found schedule.
void checkSchedule(Findings &F, std::uint64_t Seed, const MachineModel &M,
                   const Ddg &G, const ModuloSchedule &S,
                   const char *Path) {
  VerifyResult V = verifySchedule(G, M, S);
  if (!V.Ok) {
    F.report(Seed, M, G,
             std::string(Path) + ": verifier rejected schedule at T=" +
                 std::to_string(S.T) + ": " + V.Error);
    return;
  }
  std::string SimErr;
  if (!replaySchedule(G, M, S, 6, &SimErr))
    F.report(Seed, M, G,
             std::string(Path) + ": dynamic replay rejected schedule at T=" +
                 std::to_string(S.T) + ": " + SimErr);
}

/// True when \p R is a clean full-window infeasibility proof: every T in
/// [T_lb, T_lb + MaxTSlack] proven infeasible with nothing censored.
bool cleanFullProof(const SchedulerResult &R, int MaxTSlack) {
  if (R.found() || R.Cancelled || !R.Error.isOk() || R.FaultsSeen)
    return false;
  if (static_cast<int>(R.Attempts.size()) != MaxTSlack + 1)
    return false;
  for (const TAttempt &A : R.Attempts)
    if (A.Status != MilpStatus::Infeasible || A.StopReason != SearchStop::None)
      return false;
  return true;
}

void fuzzOne(const FuzzOptions &Opts, std::uint64_t InstanceSeed,
             Findings &F) {
  Rng R(InstanceSeed);
  MachineModel Machine = randomMachine(R);
  Ddg G = randomLoop(R, Machine, Opts.MaxNodes, InstanceSeed);

  // Parser round-trip differential: print -> parse -> print must be a
  // fixed point for both formats.
  {
    std::string MText = printMachine(Machine);
    Expected<MachineModel> M2 = parseMachineText(MText);
    if (!M2.ok())
      F.report(InstanceSeed, Machine, G,
               "machine round-trip failed: " + M2.status().str());
    else if (printMachine(*M2) != MText)
      F.report(InstanceSeed, Machine, G,
               "machine round-trip is not a fixed point");
    std::string LText = printLoop(G, Machine);
    Expected<Ddg> G2 = parseLoopText(LText, Machine);
    if (!G2.ok())
      F.report(InstanceSeed, Machine, G,
               "loop round-trip failed: " + G2.status().str());
    else if (printLoop(*G2, Machine) != LText)
      F.report(InstanceSeed, Machine, G,
               "loop round-trip is not a fixed point");
  }

  const bool WithFaults = !Opts.FaultSpec.empty();
  if (WithFaults) {
    std::string Err;
    if (!FaultInjector::instance().configure(Opts.FaultSpec,
                                             mix64(InstanceSeed), &Err)) {
      std::fprintf(stderr, "bad --faults spec: %s\n", Err.c_str());
      std::exit(2);
    }
  }

  SchedulerOptions Ilp;
  Ilp.TimeLimitPerT = Opts.TimeLimitPerT;
  Ilp.NodeLimitPerT = Opts.NodeLimitPerT;
  Ilp.MaxTSlack = Opts.MaxTSlack;

  SchedulerResult WithProbe = scheduleLoop(G, Machine, Ilp);
  SchedulerOptions NoProbeOpts = Ilp;
  NoProbeOpts.LpRoundingProbe = false;
  SchedulerResult NoProbe = scheduleLoop(G, Machine, NoProbeOpts);

  ImsOptions ImsOpts;
  ImsOpts.MaxTSlack = Opts.MaxTSlack;
  ImsResult Ims = iterativeModuloSchedule(G, Machine, ImsOpts);
  SlackOptions SlackOpts;
  SlackOpts.MaxTSlack = Opts.MaxTSlack;
  SlackResult Slack = slackModuloSchedule(G, Machine, SlackOpts);
  SchedulerResult Portfolio = portfolioSchedule(G, Machine, Ilp);

  // Faulted runs must end in a typed state, never a silent empty result:
  // found schedule, explicit error, or an unfound result whose stop chain
  // names what censored each attempt.
  if (WithFaults) {
    if (!WithProbe.found() && WithProbe.Error.isOk() &&
        WithProbe.Attempts.empty() && !WithProbe.Cancelled)
      F.report(InstanceSeed, Machine, G,
               "faulted ILP run returned an unexplained empty result");
    FaultInjector::instance().reset();
  }

  if (WithProbe.found())
    checkSchedule(F, InstanceSeed, Machine, G, WithProbe.Schedule,
                  "ilp+probe");
  if (NoProbe.found())
    checkSchedule(F, InstanceSeed, Machine, G, NoProbe.Schedule, "ilp");
  if (Ims.found())
    checkSchedule(F, InstanceSeed, Machine, G, Ims.Schedule, "ims");
  if (Slack.found())
    checkSchedule(F, InstanceSeed, Machine, G, Slack.Schedule, "slack");
  if (Portfolio.found())
    checkSchedule(F, InstanceSeed, Machine, G, Portfolio.Schedule,
                  "portfolio");

  // Cross-path consistency.  Proofs from faulted runs were already
  // downgraded by the driver, so every claim below must hold even when
  // --faults was active (that is the fault-soundness guarantee).
  if (WithFaults) {
    // Re-derive the ground truth fault-free for the proof checks.
    WithProbe = scheduleLoop(G, Machine, Ilp);
    NoProbe = scheduleLoop(G, Machine, NoProbeOpts);
  }
  if (WithProbe.ProvenRateOptimal && NoProbe.ProvenRateOptimal &&
      WithProbe.Schedule.T != NoProbe.Schedule.T)
    F.report(InstanceSeed, Machine, G,
             "probe/no-probe proven-optimal T disagree: " +
                 std::to_string(WithProbe.Schedule.T) + " vs " +
                 std::to_string(NoProbe.Schedule.T));
  if (WithProbe.ProvenRateOptimal) {
    int TStar = WithProbe.Schedule.T;
    auto CheckNotBetter = [&](int T, const char *Path) {
      if (T > 0 && T < TStar)
        F.report(InstanceSeed, Machine, G,
                 std::string(Path) + " beat a proven rate-optimal T: " +
                     std::to_string(T) + " < " + std::to_string(TStar));
    };
    CheckNotBetter(NoProbe.Schedule.T, "ilp");
    CheckNotBetter(Ims.Schedule.T, "ims");
    CheckNotBetter(Slack.Schedule.T, "slack");
    CheckNotBetter(Portfolio.Schedule.T, "portfolio");
  }
  if (Portfolio.found() && Ims.found() &&
      Portfolio.Schedule.T > Ims.Schedule.T)
    F.report(InstanceSeed, Machine, G,
             "portfolio worse than its own IMS leg");
  if (Portfolio.found() && Slack.found() &&
      Portfolio.Schedule.T > Slack.Schedule.T)
    F.report(InstanceSeed, Machine, G,
             "portfolio worse than its own slack leg");
  if (cleanFullProof(WithProbe, Opts.MaxTSlack)) {
    int WindowEnd = WithProbe.TLowerBound + Opts.MaxTSlack;
    auto CheckUnfound = [&](int T, const char *Path) {
      if (T > 0 && T <= WindowEnd)
        F.report(InstanceSeed, Machine, G,
                 std::string(Path) + " found T=" + std::to_string(T) +
                     " inside a window proven fully infeasible");
    };
    CheckUnfound(Ims.Schedule.T, "ims");
    CheckUnfound(Slack.Schedule.T, "slack");
    CheckUnfound(Portfolio.Schedule.T, "portfolio");
  }

  // Service path (pool + cache + watchdog + ladder): resubmitting the same
  // loop must give T-identical results, cold or cached.
  if (Opts.ServiceEvery > 0 &&
      InstanceSeed % static_cast<std::uint64_t>(Opts.ServiceEvery) == 0) {
    ServiceOptions SvcOpts;
    SvcOpts.Jobs = 2;
    SvcOpts.Sched = Ilp;
    SvcOpts.Portfolio = true;
    SchedulerService Service(Machine, SvcOpts);
    std::vector<Ddg> Batch{G, G, G};
    std::vector<SchedulerResult> Results = Service.scheduleAll(Batch);
    for (const SchedulerResult &SR : Results) {
      if (SR.found())
        checkSchedule(F, InstanceSeed, Machine, G, SR.Schedule, "service");
      if (SR.Schedule.T != Results.front().Schedule.T)
        F.report(InstanceSeed, Machine, G,
                 "service resubmission changed the answer");
    }
  }
}

/// Two-engine differential body shared by --mode ilp-vs-sat and --mode
/// cgra: the branch-and-bound ILP and the CDCL SAT backend answer the
/// same instance; any disagreement between their schedules or proofs is a
/// finding.
SchedulerResult ilpVsSatBody(const FuzzOptions &Opts,
                             std::uint64_t InstanceSeed,
                             const MachineModel &Machine, const Ddg &G,
                             Findings &F) {
  const bool WithFaults = !Opts.FaultSpec.empty();
  if (WithFaults) {
    std::string Err;
    if (!FaultInjector::instance().configure(Opts.FaultSpec,
                                             mix64(InstanceSeed), &Err)) {
      std::fprintf(stderr, "bad --faults spec: %s\n", Err.c_str());
      std::exit(2);
    }
  }

  SchedulerOptions SOpts;
  SOpts.TimeLimitPerT = Opts.TimeLimitPerT;
  SOpts.NodeLimitPerT = Opts.NodeLimitPerT;
  SOpts.MaxTSlack = Opts.MaxTSlack;

  SchedulerResult Ilp = scheduleLoop(G, Machine, SOpts);
  SchedulerResult Sat = satScheduleLoop(G, Machine, SOpts);

  // Faulted runs must end in a typed state, never a silent empty result.
  if (WithFaults) {
    auto Unexplained = [](const SchedulerResult &X) {
      return !X.found() && X.Error.isOk() && X.Attempts.empty() &&
             !X.Cancelled;
    };
    if (Unexplained(Ilp))
      F.report(InstanceSeed, Machine, G,
               "faulted ILP run returned an unexplained empty result");
    if (Unexplained(Sat))
      F.report(InstanceSeed, Machine, G,
               "faulted SAT run returned an unexplained empty result");
    FaultInjector::instance().reset();
  }

  if (Ilp.found())
    checkSchedule(F, InstanceSeed, Machine, G, Ilp.Schedule, "ilp");
  if (Sat.found())
    checkSchedule(F, InstanceSeed, Machine, G, Sat.Schedule, "sat");

  // Proof cross-checks run on fault-free ground truth (a faulted run
  // already downgraded its claims; the re-solve proves it downgraded
  // enough — any surviving claim must agree with the clean answers).
  if (WithFaults) {
    Ilp = scheduleLoop(G, Machine, SOpts);
    Sat = satScheduleLoop(G, Machine, SOpts);
  }
  if (Ilp.Error.isOk() && Sat.Error.isOk() &&
      Ilp.TLowerBound != Sat.TLowerBound)
    F.report(InstanceSeed, Machine, G,
             "T_lb disagrees: ilp " + std::to_string(Ilp.TLowerBound) +
                 " vs sat " + std::to_string(Sat.TLowerBound));
  if (Ilp.ProvenRateOptimal && Sat.ProvenRateOptimal &&
      Ilp.Schedule.T != Sat.Schedule.T)
    F.report(InstanceSeed, Machine, G,
             "proven-optimal II mismatch: ilp " +
                 std::to_string(Ilp.Schedule.T) + " vs sat " +
                 std::to_string(Sat.Schedule.T));
  if (Ilp.ProvenRateOptimal && Sat.found() &&
      Sat.Schedule.T < Ilp.Schedule.T)
    F.report(InstanceSeed, Machine, G,
             "sat beat the ILP's proven optimum: " +
                 std::to_string(Sat.Schedule.T) + " < " +
                 std::to_string(Ilp.Schedule.T));
  if (Sat.ProvenRateOptimal && Ilp.found() &&
      Ilp.Schedule.T < Sat.Schedule.T)
    F.report(InstanceSeed, Machine, G,
             "ilp beat the SAT backend's proven optimum: " +
                 std::to_string(Ilp.Schedule.T) + " < " +
                 std::to_string(Sat.Schedule.T));
  if (cleanFullProof(Ilp, Opts.MaxTSlack) && Sat.found() &&
      Sat.Schedule.T <= Ilp.TLowerBound + Opts.MaxTSlack)
    F.report(InstanceSeed, Machine, G,
             "sat found T=" + std::to_string(Sat.Schedule.T) +
                 " inside a window the ILP proved fully infeasible");
  if (cleanFullProof(Sat, Opts.MaxTSlack) && Ilp.found() &&
      Ilp.Schedule.T <= Sat.TLowerBound + Opts.MaxTSlack)
    F.report(InstanceSeed, Machine, G,
             "ilp found T=" + std::to_string(Ilp.Schedule.T) +
                 " inside a window the SAT backend proved fully infeasible");
  return Ilp;
}

void fuzzIlpVsSat(const FuzzOptions &Opts, std::uint64_t InstanceSeed,
                  Findings &F) {
  Rng R(InstanceSeed);
  MachineModel Machine = randomMachine(R);
  Ddg G = randomLoop(R, Machine, Opts.MaxNodes, InstanceSeed);
  ilpVsSatBody(Opts, InstanceSeed, Machine, G, F);
}

/// CGRA mapping differential (--mode cgra): a random small PE grid (mesh
/// or torus, bounded hop budget) and a dataflow kernel; both exact engines
/// answer and are cross-checked, the heuristics' schedules are verified
/// and replayed, and the machine text (grid topology included) must
/// round-trip through the parser.
void fuzzCgra(const FuzzOptions &Opts, std::uint64_t InstanceSeed,
              Findings &F) {
  Rng R(InstanceSeed);
  int Rows = R.intIn(1, 2);
  int Cols = R.intIn(2, 3);
  bool Torus = R.chance(0.5);
  int MaxHops = R.chance(0.25) ? -1 : R.intIn(1, 2);
  MachineModel Machine = cgraGrid(Rows, Cols, Torus, MaxHops);

  CgraCorpusOptions LoopOpts;
  LoopOpts.MaxNodes = std::min(Opts.MaxNodes, 8);
  Ddg G = generateRandomCgraLoop(Machine, mix64(InstanceSeed ^ 0xc62a), LoopOpts);

  // Topology-bearing machine text must round-trip exactly.
  {
    std::string MText = printMachine(Machine);
    Expected<MachineModel> M2 = parseMachineText(MText);
    if (!M2.ok())
      F.report(InstanceSeed, Machine, G,
               "cgra machine round-trip failed: " + M2.status().str());
    else if (printMachine(*M2) != MText)
      F.report(InstanceSeed, Machine, G,
               "cgra machine round-trip is not a fixed point");
  }

  // The heuristics must stay sound under routing hazards: anything they
  // find verifies and replays (the exact engines' optima bound them via
  // the shared body's proof checks).
  ImsOptions ImsOpts;
  ImsOpts.MaxTSlack = Opts.MaxTSlack;
  ImsResult Ims = iterativeModuloSchedule(G, Machine, ImsOpts);
  if (Ims.found())
    checkSchedule(F, InstanceSeed, Machine, G, Ims.Schedule, "cgra-ims");
  SlackOptions SlackOpts;
  SlackOpts.MaxTSlack = Opts.MaxTSlack;
  SlackResult Slack = slackModuloSchedule(G, Machine, SlackOpts);
  if (Slack.found())
    checkSchedule(F, InstanceSeed, Machine, G, Slack.Schedule, "cgra-slack");

  SchedulerResult Ilp = ilpVsSatBody(Opts, InstanceSeed, Machine, G, F);
  if (Ilp.ProvenRateOptimal) {
    if (Ims.found() && Ims.Schedule.T < Ilp.Schedule.T)
      F.report(InstanceSeed, Machine, G,
               "cgra-ims beat a proven rate-optimal T: " +
                   std::to_string(Ims.Schedule.T) + " < " +
                   std::to_string(Ilp.Schedule.T));
    if (Slack.found() && Slack.Schedule.T < Ilp.Schedule.T)
      F.report(InstanceSeed, Machine, G,
               "cgra-slack beat a proven rate-optimal T: " +
                   std::to_string(Slack.Schedule.T) + " < " +
                   std::to_string(Ilp.Schedule.T));
  }
  if (cleanFullProof(Ilp, Opts.MaxTSlack)) {
    int WindowEnd = Ilp.TLowerBound + Opts.MaxTSlack;
    if (Ims.found() && Ims.Schedule.T <= WindowEnd)
      F.report(InstanceSeed, Machine, G,
               "cgra-ims found T=" + std::to_string(Ims.Schedule.T) +
                   " inside a window proven fully infeasible");
    if (Slack.found() && Slack.Schedule.T <= WindowEnd)
      F.report(InstanceSeed, Machine, G,
               "cgra-slack found T=" + std::to_string(Slack.Schedule.T) +
                   " inside a window proven fully infeasible");
  }
}

/// True when no limit censored any part of \p R: the per-T status chain is
/// then deterministic ground truth — warm starts may change the simplex
/// path, never which T is infeasible or what II gets proven.
bool uncensored(const SchedulerResult &R) {
  if (R.Cancelled || !R.Error.isOk() || R.FaultsSeen)
    return false;
  for (const TAttempt &A : R.Attempts)
    if (A.StopReason != SearchStop::None)
      return false;
  return true;
}

/// Warm-vs-cold differential: the same instance solved with LP warm starts
/// across candidate T (basis carried from the previous T's relaxation into
/// the next probe and branch-and-bound) and with cold rebuilds.  The two
/// runs may pivot through different vertices — the answers must agree.
void fuzzWarmstart(const FuzzOptions &Opts, std::uint64_t InstanceSeed,
                   Findings &F) {
  Rng R(InstanceSeed);
  MachineModel Machine = randomMachine(R);
  Ddg G = randomLoop(R, Machine, Opts.MaxNodes, InstanceSeed);

  const bool WithFaults = !Opts.FaultSpec.empty();
  if (WithFaults) {
    std::string Err;
    if (!FaultInjector::instance().configure(Opts.FaultSpec,
                                             mix64(InstanceSeed), &Err)) {
      std::fprintf(stderr, "bad --faults spec: %s\n", Err.c_str());
      std::exit(2);
    }
  }

  SchedulerOptions WarmOpts;
  WarmOpts.TimeLimitPerT = Opts.TimeLimitPerT;
  WarmOpts.NodeLimitPerT = Opts.NodeLimitPerT;
  WarmOpts.MaxTSlack = Opts.MaxTSlack;
  SchedulerOptions ColdOpts = WarmOpts;
  ColdOpts.WarmStartAcrossT = false;

  SchedulerResult Warm = scheduleLoop(G, Machine, WarmOpts);
  SchedulerResult Cold = scheduleLoop(G, Machine, ColdOpts);

  if (WithFaults) {
    auto Unexplained = [](const SchedulerResult &X) {
      return !X.found() && X.Error.isOk() && X.Attempts.empty() &&
             !X.Cancelled;
    };
    if (Unexplained(Warm))
      F.report(InstanceSeed, Machine, G,
               "faulted warm run returned an unexplained empty result");
    if (Unexplained(Cold))
      F.report(InstanceSeed, Machine, G,
               "faulted cold run returned an unexplained empty result");
    FaultInjector::instance().reset();
  }

  if (Warm.found())
    checkSchedule(F, InstanceSeed, Machine, G, Warm.Schedule, "warm");
  if (Cold.found())
    checkSchedule(F, InstanceSeed, Machine, G, Cold.Schedule, "cold");

  // Cross-checks run on fault-free ground truth, as in the other modes: a
  // faulted run must already have downgraded any claim the clean runs
  // would contradict.
  if (WithFaults) {
    Warm = scheduleLoop(G, Machine, WarmOpts);
    Cold = scheduleLoop(G, Machine, ColdOpts);
  }
  if (Warm.Error.isOk() && Cold.Error.isOk() &&
      Warm.TLowerBound != Cold.TLowerBound)
    F.report(InstanceSeed, Machine, G,
             "T_lb disagrees: warm " + std::to_string(Warm.TLowerBound) +
                 " vs cold " + std::to_string(Cold.TLowerBound));
  if (Warm.ProvenRateOptimal && Cold.ProvenRateOptimal &&
      Warm.Schedule.T != Cold.Schedule.T)
    F.report(InstanceSeed, Machine, G,
             "proven-optimal II mismatch: warm " +
                 std::to_string(Warm.Schedule.T) + " vs cold " +
                 std::to_string(Cold.Schedule.T));
  if (Warm.ProvenRateOptimal && Cold.found() &&
      Cold.Schedule.T < Warm.Schedule.T)
    F.report(InstanceSeed, Machine, G,
             "cold rebuild beat the warm run's proven optimum: " +
                 std::to_string(Cold.Schedule.T) + " < " +
                 std::to_string(Warm.Schedule.T));
  if (Cold.ProvenRateOptimal && Warm.found() &&
      Warm.Schedule.T < Cold.Schedule.T)
    F.report(InstanceSeed, Machine, G,
             "warm run beat the cold rebuild's proven optimum: " +
                 std::to_string(Warm.Schedule.T) + " < " +
                 std::to_string(Cold.Schedule.T));
  if (cleanFullProof(Warm, Opts.MaxTSlack) && Cold.found() &&
      Cold.Schedule.T <= Warm.TLowerBound + Opts.MaxTSlack)
    F.report(InstanceSeed, Machine, G,
             "cold found T=" + std::to_string(Cold.Schedule.T) +
                 " inside a window the warm run proved fully infeasible");
  if (cleanFullProof(Cold, Opts.MaxTSlack) && Warm.found() &&
      Warm.Schedule.T <= Cold.TLowerBound + Opts.MaxTSlack)
    F.report(InstanceSeed, Machine, G,
             "warm found T=" + std::to_string(Warm.Schedule.T) +
                 " inside a window the cold run proved fully infeasible");

  // The strongest check needs both runs uncensored; then the whole per-T
  // chain is deterministic and must match attempt for attempt.  (The
  // schedules themselves may differ — LP degeneracy legitimately lets the
  // two runs extract different optimal vertices.)
  if (uncensored(Warm) && uncensored(Cold)) {
    if (Warm.found() != Cold.found() ||
        Warm.Schedule.T != Cold.Schedule.T ||
        Warm.ProvenRateOptimal != Cold.ProvenRateOptimal)
      F.report(InstanceSeed, Machine, G,
               "uncensored warm/cold answers diverge: warm T=" +
                   std::to_string(Warm.Schedule.T) +
                   (Warm.ProvenRateOptimal ? " (proven)" : "") + " vs cold T=" +
                   std::to_string(Cold.Schedule.T) +
                   (Cold.ProvenRateOptimal ? " (proven)" : "") +
                   " [warm: " + Warm.stopChain() + "] [cold: " +
                   Cold.stopChain() + "]");
    else if (Warm.Attempts.size() != Cold.Attempts.size())
      F.report(InstanceSeed, Machine, G,
               "uncensored warm/cold attempt chains differ in length: [warm: " +
                   Warm.stopChain() + "] [cold: " + Cold.stopChain() + "]");
    else
      for (size_t I = 0; I < Warm.Attempts.size(); ++I)
        if (Warm.Attempts[I].T != Cold.Attempts[I].T ||
            Warm.Attempts[I].Status != Cold.Attempts[I].Status ||
            Warm.Attempts[I].ModuloSkipped != Cold.Attempts[I].ModuloSkipped) {
          F.report(InstanceSeed, Machine, G,
                   "uncensored warm/cold status chains diverge: [warm: " +
                       Warm.stopChain() + "] [cold: " + Cold.stopChain() +
                       "]");
          break;
        }
  }
}

//===----------------------------------------------------------------------===//
// Wire-protocol fuzzing (--mode wire)
//===----------------------------------------------------------------------===//

/// Arbitrary bytes, including NUL and high bit — the codec is
/// length-prefixed, so content must never matter.
std::string randomWireString(Rng &R, int MaxLen) {
  int Len = R.intIn(0, MaxLen);
  std::string S;
  S.reserve(static_cast<std::size_t>(Len));
  for (int I = 0; I < Len; ++I)
    S.push_back(static_cast<char>(R.intIn(0, 255)));
  return S;
}

/// Doubles that stress the f64 bit-pattern contract: signed zeros,
/// infinities, NaN, and ordinary values.
double randomWireDouble(Rng &R) {
  switch (R.intIn(0, 7)) {
  case 0:
    return 0.0;
  case 1:
    return -0.0;
  case 2:
    return std::numeric_limits<double>::infinity();
  case 3:
    return -std::numeric_limits<double>::infinity();
  case 4:
    return std::numeric_limits<double>::quiet_NaN();
  default:
    return R.intIn(-1000000, 1000000) * 0.001;
  }
}

/// A SchedulerResult with every field randomized over its full legal
/// range (the decoder rejects out-of-range enums, so stay in range here;
/// rejection is covered separately by the corruption sweeps).
SchedulerResult randomWireResult(Rng &R) {
  SchedulerResult Res;
  Res.Schedule.T = R.intIn(-2, 100);
  int N = R.intIn(0, 8);
  for (int I = 0; I < N; ++I) {
    Res.Schedule.StartTime.push_back(R.intIn(-1, 500));
    Res.Schedule.Mapping.push_back(R.intIn(-1, 7));
  }
  Res.TDep = R.intIn(0, 50);
  Res.TRes = R.intIn(0, 50);
  Res.TLowerBound = R.intIn(0, 50);
  Res.ProvenRateOptimal = R.chance(0.5);
  Res.VerifyFailed = R.chance(0.1);
  Res.Cancelled = R.chance(0.1);
  Res.Error = Status(
      static_cast<StatusCode>(
          R.intIn(0, static_cast<int>(StatusCode::FaultInjected))),
      randomWireString(R, 32));
  Res.Error.withPhase(randomWireString(R, 12))
      .withT(R.intIn(-1, 50))
      .withInstance(randomWireString(R, 12));
  Res.Fallback = static_cast<FallbackRung>(
      R.intIn(0, static_cast<int>(FallbackRung::IterativeModulo)));
  Res.FaultsSeen = R.chance(0.2);
  Res.CacheHit = R.chance(0.3);
  Res.Retries = R.intIn(0, 3);
  Res.TotalSeconds = randomWireDouble(R);
  Res.TotalNodes = static_cast<std::int64_t>(R.next() >> 16);
  int Attempts = R.intIn(0, 4);
  for (int I = 0; I < Attempts; ++I) {
    TAttempt A;
    A.T = R.intIn(1, 60);
    A.ModuloSkipped = R.chance(0.2);
    A.Status = static_cast<MilpStatus>(
        R.intIn(0, static_cast<int>(MilpStatus::Error)));
    A.StopReason = static_cast<SearchStop>(
        R.intIn(0, static_cast<int>(SearchStop::Fault)));
    A.Seconds = randomWireDouble(R);
    A.Nodes = static_cast<std::int64_t>(R.next() >> 20);
    Res.Attempts.push_back(A);
  }
  return Res;
}

net::ScheduleRequestMsg randomWireRequest(Rng &R) {
  net::ScheduleRequestMsg Req;
  Req.Tenant = randomWireString(R, 24);
  Req.Scheduler = randomWireString(R, 16);
  Req.DeadlineSeconds = randomWireDouble(R);
  Req.MachineText = randomWireString(R, 64);
  Req.LoopText = randomWireString(R, 64);
  return Req;
}

net::ScheduleResponseMsg randomWireResponse(Rng &R) {
  net::ScheduleResponseMsg Resp;
  Resp.Outcome = static_cast<net::ResponseOutcome>(
      R.intIn(0, static_cast<int>(net::ResponseOutcome::Error)));
  Resp.Degradation = static_cast<DegradationLevel>(
      R.intIn(0, static_cast<int>(DegradationLevel::Shed)));
  Resp.Reason = randomWireString(R, 48);
  Resp.HasResult = R.chance(0.6);
  if (Resp.HasResult)
    Resp.Result = randomWireResult(R);
  return Resp;
}

/// The daemon's receive path in miniature: header decode, then payload
/// length/CRC verification.  \returns true when \p Bytes is rejected.
bool wireRejects(std::span<const std::uint8_t> Bytes) {
  net::FrameHeader H;
  if (net::decodeFrameHeader(Bytes, H) != net::FrameError::None)
    return true;
  return net::verifyFramePayload(H, Bytes.subspan(net::FrameHeaderSize)) !=
         net::FrameError::None;
}

/// Frame-level checks for one payload: clean accept, then exhaustive
/// truncation and exhaustive single-bit-flip rejection.
void fuzzWireFrame(std::uint64_t InstanceSeed, Findings &F,
                   net::MessageType Type,
                   std::span<const std::uint8_t> Payload, const char *What) {
  std::vector<std::uint8_t> Frame = net::encodeFrame(Type, Payload);

  net::FrameHeader H;
  net::FrameError E =
      net::decodeFrameHeader(std::span(Frame).first(net::FrameHeaderSize), H);
  if (E != net::FrameError::None) {
    F.report(InstanceSeed, std::string(What) + ": clean header rejected: " +
                               net::frameErrorName(E));
    return;
  }
  if (H.Type != Type || H.PayloadLen != Payload.size()) {
    F.report(InstanceSeed,
             std::string(What) + ": header fields do not round-trip");
    return;
  }
  E = net::verifyFramePayload(H,
                              std::span(Frame).subspan(net::FrameHeaderSize));
  if (E != net::FrameError::None) {
    F.report(InstanceSeed, std::string(What) + ": clean payload rejected: " +
                               net::frameErrorName(E));
    return;
  }

  // Every proper prefix of the frame must be rejected (a short header is
  // a bad header; a short payload fails length/CRC verification).
  for (std::size_t Cut = 0; Cut < Frame.size(); ++Cut) {
    if (!wireRejects(std::span(Frame).first(Cut))) {
      F.report(InstanceSeed, std::string(What) + ": truncation to " +
                                 std::to_string(Cut) + " bytes accepted");
      break;
    }
  }

  // Every single-bit flip — header or payload — must be caught by one of
  // the two CRC-32s (which detect all single-bit errors).
  for (std::size_t Bit = 0; Bit < Frame.size() * 8; ++Bit) {
    Frame[Bit / 8] ^= static_cast<std::uint8_t>(1u << (Bit % 8));
    bool Rejected = wireRejects(Frame);
    Frame[Bit / 8] ^= static_cast<std::uint8_t>(1u << (Bit % 8));
    if (!Rejected) {
      F.report(InstanceSeed, std::string(What) + ": bit flip at bit " +
                                 std::to_string(Bit) + " accepted");
      break;
    }
  }
}

/// One wire-protocol instance: random request and response, byte-exact
/// message round trips, message-level truncation/corruption rejection, and
/// the frame sweeps of fuzzWireFrame.
void fuzzWire(std::uint64_t InstanceSeed, Findings &F) {
  Rng R(InstanceSeed);

  // --- ScheduleRequest message codec.
  net::ScheduleRequestMsg Req = randomWireRequest(R);
  ByteWriter ReqW;
  net::encodeScheduleRequest(ReqW, Req);
  std::vector<std::uint8_t> ReqBytes = ReqW.take();
  {
    ByteReader Rd(ReqBytes);
    net::ScheduleRequestMsg Out;
    if (!net::decodeScheduleRequest(Rd, Out) || !Rd.done()) {
      F.report(InstanceSeed, "request decode(encode()) failed");
    } else {
      ByteWriter W2;
      net::encodeScheduleRequest(W2, Out);
      if (W2.data() != ReqBytes)
        F.report(InstanceSeed, "request re-encode is not byte-exact");
    }
    // Any message-level truncation must fail (the codec is length-
    // prefixed throughout, so a cut always lands inside a promised field).
    std::vector<std::uint8_t> Cut(
        ReqBytes.begin(),
        ReqBytes.begin() +
            R.intIn(0, static_cast<int>(ReqBytes.size()) - 1));
    ByteReader RdCut(Cut);
    net::ScheduleRequestMsg OutCut;
    if (net::decodeScheduleRequest(RdCut, OutCut) && RdCut.done())
      F.report(InstanceSeed, "truncated request message accepted");
    // Trailing garbage must be flagged by done().
    std::vector<std::uint8_t> Extra = ReqBytes;
    Extra.push_back(static_cast<std::uint8_t>(R.intIn(0, 255)));
    ByteReader RdExtra(Extra);
    net::ScheduleRequestMsg OutExtra;
    if (net::decodeScheduleRequest(RdExtra, OutExtra) && RdExtra.done())
      F.report(InstanceSeed, "request with trailing garbage accepted");
  }

  // --- ScheduleResponse message codec.
  net::ScheduleResponseMsg Resp = randomWireResponse(R);
  ByteWriter RespW;
  net::encodeScheduleResponse(RespW, Resp);
  std::vector<std::uint8_t> RespBytes = RespW.take();
  {
    ByteReader Rd(RespBytes);
    net::ScheduleResponseMsg Out;
    if (!net::decodeScheduleResponse(Rd, Out) || !Rd.done()) {
      F.report(InstanceSeed, "response decode(encode()) failed");
    } else {
      ByteWriter W2;
      net::encodeScheduleResponse(W2, Out);
      if (W2.data() != RespBytes)
        F.report(InstanceSeed, "response re-encode is not byte-exact");
    }
    std::vector<std::uint8_t> Cut(
        RespBytes.begin(),
        RespBytes.begin() +
            R.intIn(0, static_cast<int>(RespBytes.size()) - 1));
    ByteReader RdCut(Cut);
    net::ScheduleResponseMsg OutCut;
    if (net::decodeScheduleResponse(RdCut, OutCut) && RdCut.done())
      F.report(InstanceSeed, "truncated response message accepted");

    // Semantic rejection: an out-of-range outcome enum and a
    // non-canonical boolean must both fail, not alias a legal value.
    std::vector<std::uint8_t> BadEnum = RespBytes;
    BadEnum[0] = static_cast<std::uint8_t>(R.intIn(
        static_cast<int>(net::ResponseOutcome::Error) + 1, 255));
    ByteReader RdEnum(BadEnum);
    net::ScheduleResponseMsg OutEnum;
    if (net::decodeScheduleResponse(RdEnum, OutEnum))
      F.report(InstanceSeed, "out-of-range response outcome accepted");
    std::vector<std::uint8_t> BadBool = RespBytes;
    // HasResult sits after outcome, level, and the length-prefixed reason.
    std::size_t BoolAt = 1 + 1 + 4 + Resp.Reason.size();
    BadBool[BoolAt] = static_cast<std::uint8_t>(R.intIn(2, 255));
    ByteReader RdBool(BadBool);
    net::ScheduleResponseMsg OutBool;
    if (net::decodeScheduleResponse(RdBool, OutBool) && RdBool.done())
      F.report(InstanceSeed, "non-canonical HasResult boolean accepted");
  }

  // --- frame codec: exhaustive truncation + bit-flip sweeps over both
  // payloads and over an empty-payload control frame.
  fuzzWireFrame(InstanceSeed, F, net::MessageType::ScheduleRequest, ReqBytes,
                "request frame");
  fuzzWireFrame(InstanceSeed, F, net::MessageType::ScheduleResponse,
                RespBytes, "response frame");
  fuzzWireFrame(InstanceSeed, F, net::MessageType::StatsRequest, {},
                "empty frame");
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--instances") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opts.Instances = std::atoi(V);
    } else if (Arg == "--seed") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opts.Seed = static_cast<std::uint64_t>(std::strtoull(V, nullptr, 10));
    } else if (Arg == "--max-nodes") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opts.MaxNodes = std::atoi(V);
    } else if (Arg == "--mode") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opts.Mode = V;
    } else if (Arg == "--faults") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opts.FaultSpec = V;
    } else if (Arg == "--time-limit") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opts.TimeLimitPerT = std::atof(V);
    } else if (Arg == "--node-limit") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opts.NodeLimitPerT = std::atoll(V);
    } else if (Arg == "--max-t-slack") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opts.MaxTSlack = std::atoi(V);
    } else if (Arg == "--service-every") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opts.ServiceEvery = std::atoi(V);
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else {
      return usage(Argv[0]);
    }
  }
  if (Opts.Instances < 1 || Opts.MaxNodes < 2)
    return usage(Argv[0]);
  if (Opts.Mode != "all" && Opts.Mode != "ilp-vs-sat" &&
      Opts.Mode != "warmstart" && Opts.Mode != "cgra" &&
      Opts.Mode != "wire")
    return usage(Argv[0]);

  Stopwatch Total;
  Findings F;
  for (int I = 0; I < Opts.Instances; ++I) {
    std::uint64_t InstanceSeed = mix64(Opts.Seed) ^ static_cast<std::uint64_t>(I);
    if (Opts.Mode == "ilp-vs-sat")
      fuzzIlpVsSat(Opts, InstanceSeed, F);
    else if (Opts.Mode == "warmstart")
      fuzzWarmstart(Opts, InstanceSeed, F);
    else if (Opts.Mode == "cgra")
      fuzzCgra(Opts, InstanceSeed, F);
    else if (Opts.Mode == "wire")
      fuzzWire(InstanceSeed, F);
    else
      fuzzOne(Opts, InstanceSeed, F);
    if (Opts.Verbose && (I + 1) % 100 == 0)
      std::fprintf(stderr, "... %d/%d instances, %d findings, %.1fs\n",
                   I + 1, Opts.Instances, F.Count, Total.seconds());
  }

  std::printf("swp_fuzz: %d instances (%s), seed %llu%s, %d findings, "
              "%.1fs\n",
              Opts.Instances, Opts.Mode.c_str(),
              static_cast<unsigned long long>(Opts.Seed),
              Opts.FaultSpec.empty()
                  ? ""
                  : (" (faults: " + Opts.FaultSpec + ")").c_str(),
              F.Count, Total.seconds());
  return F.Count == 0 ? 0 : 1;
}
