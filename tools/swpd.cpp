//===- swpd.cpp - The scheduling daemon -----------------------------------===//
//
// swpd: serve scheduling requests over a local socket.
//
//   swpd --socket PATH [options]
//
// Options:
//   --socket PATH          AF_UNIX socket path (required)
//   --jobs N               worker threads per keyed service (default:
//                          hardware concurrency)
//   --time-limit S         per-T exact-engine limit (default 10)
//   --snapshot-dir DIR     persist the result cache under DIR (loaded at
//                          start, saved at stop and every --snapshot-every
//                          completions)
//   --snapshot-every N     snapshot cadence in completed requests (0 =
//                          only at stop)
//   --cache-capacity N     per-shard LRU capacity of the result cache
//   --max-in-flight N      admission: shed beyond N concurrent requests
//   --reduced-at N         admission: reduced exact effort from N in flight
//   --heuristic-at N       admission: heuristic-ladder-only from N
//   --tenant-budget S      per-tenant token bucket capacity in seconds
//                          (0 disables tenant budgets)
//   --tenant-refill R      bucket refill rate in seconds/second
//   --io-timeout S         per-connection frame read/write timeout
//   --run-for S            exit after S seconds (tests/CI; 0 = until
//                          signal or client Shutdown frame)
//
// The daemon exits cleanly on SIGINT/SIGTERM or a client's Shutdown frame,
// saving a final cache snapshot; final stats go to stderr.
//
//===----------------------------------------------------------------------===//

#include "swp/net/Daemon.h"
#include "swp/support/Stopwatch.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace swp;
using namespace swp::net;

namespace {

volatile std::sig_atomic_t SignalSeen = 0;

void onSignal(int) { SignalSeen = 1; }

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--jobs N] [--time-limit S]\n"
               "       [--snapshot-dir DIR] [--snapshot-every N] "
               "[--cache-capacity N]\n"
               "       [--max-in-flight N] [--reduced-at N] "
               "[--heuristic-at N]\n"
               "       [--tenant-budget S] [--tenant-refill R] "
               "[--io-timeout S] [--run-for S]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  DaemonOptions Opts;
  double RunFor = 0.0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    std::string Val;
    if (Arg == "--socket" && Next(Val))
      Opts.SocketPath = Val;
    else if (Arg == "--jobs" && Next(Val))
      Opts.Service.Jobs = std::atoi(Val.c_str());
    else if (Arg == "--time-limit" && Next(Val))
      Opts.Service.Sched.TimeLimitPerT = std::atof(Val.c_str());
    else if (Arg == "--snapshot-dir" && Next(Val))
      Opts.SnapshotDir = Val;
    else if (Arg == "--snapshot-every" && Next(Val))
      Opts.SnapshotEvery = static_cast<std::uint64_t>(
          std::strtoull(Val.c_str(), nullptr, 10));
    else if (Arg == "--cache-capacity" && Next(Val))
      Opts.CachePerShardCapacity = static_cast<std::size_t>(
          std::strtoull(Val.c_str(), nullptr, 10));
    else if (Arg == "--max-in-flight" && Next(Val))
      Opts.Admission.MaxInFlight = std::atoi(Val.c_str());
    else if (Arg == "--reduced-at" && Next(Val))
      Opts.Admission.ReducedEffortAt = std::atoi(Val.c_str());
    else if (Arg == "--heuristic-at" && Next(Val))
      Opts.Admission.HeuristicOnlyAt = std::atoi(Val.c_str());
    else if (Arg == "--tenant-budget" && Next(Val))
      Opts.Admission.TenantBudgetSeconds = std::atof(Val.c_str());
    else if (Arg == "--tenant-refill" && Next(Val))
      Opts.Admission.TenantRefillPerSecond = std::atof(Val.c_str());
    else if (Arg == "--io-timeout" && Next(Val))
      Opts.IoTimeoutSeconds = std::atof(Val.c_str());
    else if (Arg == "--run-for" && Next(Val))
      RunFor = std::atof(Val.c_str());
    else
      return usage(Argv[0]);
  }
  if (Opts.SocketPath.empty())
    return usage(Argv[0]);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  Daemon D(Opts);
  if (Status St = D.start(); !St.isOk()) {
    std::fprintf(stderr, "swpd: %s\n", St.str().c_str());
    return 1;
  }
  std::fprintf(stderr, "swpd: listening on %s\n", Opts.SocketPath.c_str());

  Stopwatch Up;
  for (;;) {
    if (D.waitShutdownRequested(0.2))
      break;
    if (SignalSeen)
      break;
    if (RunFor > 0 && Up.seconds() >= RunFor)
      break;
  }
  D.stop();
  std::fprintf(stderr, "swpd: stopped after %.1fs\n\n%s\n", Up.seconds(),
               D.statsText().c_str());
  return 0;
}
