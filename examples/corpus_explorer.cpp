//===- corpus_explorer.cpp - Inspect the synthetic loop corpus ------------===//
//
// Generates the 1066-loop corpus, prints its size/recurrence statistics,
// and schedules a small sample end to end (ILP vs heuristic).
//
// Run:  ./corpus_explorer [num-loops-to-schedule]
//
//===----------------------------------------------------------------------===//

#include "swp/core/Driver.h"
#include "swp/ddg/Analysis.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/support/TextTable.h"
#include "swp/workload/Corpus.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace swp;

int main(int Argc, char **Argv) {
  MachineModel Machine = ppc604Like();
  std::vector<Ddg> Corpus = generateCorpus(Machine);

  int SizeHist[32] = {};
  int WithRecurrence = 0;
  int MaxNodes = 0;
  for (const Ddg &G : Corpus) {
    ++SizeHist[std::min(G.numNodes(), 31)];
    MaxNodes = std::max(MaxNodes, G.numNodes());
    if (recurrenceMii(G) > 0)
      ++WithRecurrence;
  }
  std::printf("corpus: %zu loops, max %d nodes, %d with recurrences\n\n",
              Corpus.size(), MaxNodes, WithRecurrence);
  std::printf("size histogram (nodes: count):\n");
  for (int N = 0; N <= MaxNodes; ++N)
    if (SizeHist[N] > 0)
      std::printf("  %2d: %4d %s\n", N, SizeHist[N],
                  std::string(static_cast<size_t>(SizeHist[N] / 4), '#')
                      .c_str());

  int Sample = Argc > 1 ? std::atoi(Argv[1]) : 10;
  Sample = std::min<int>(Sample, static_cast<int>(Corpus.size()));
  std::printf("\nscheduling the first %d loops:\n", Sample);
  TextTable Table;
  Table.setHeader({"loop", "N", "T_lb", "II(ILP)", "II(IMS)"});
  for (int I = 0; I < Sample; ++I) {
    const Ddg &G = Corpus[static_cast<size_t>(I)];
    SchedulerResult Ilp = scheduleLoop(G, Machine);
    ImsResult Ims = iterativeModuloSchedule(G, Machine);
    Table.addRow({G.name(), std::to_string(G.numNodes()),
                  std::to_string(Ilp.TLowerBound),
                  Ilp.found() ? std::to_string(Ilp.Schedule.T) : "-",
                  Ims.found() ? std::to_string(Ims.Schedule.T) : "-"});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}
