//===- motivating_example.cpp - The paper's Section 2 walk-through --------===//
//
// Reproduces the motivating example end to end: the DDG and its bounds,
// schedules on the clean / non-pipelined / hazard machine variants, the
// T/K/A decomposition, the per-stage usage tables, and the circular-arc
// mapping picture.
//
// Run:  ./motivating_example
//
//===----------------------------------------------------------------------===//

#include "swp/core/CircularArcs.h"
#include "swp/core/Driver.h"
#include "swp/core/KernelExpander.h"
#include "swp/ddg/Analysis.h"
#include "swp/ddg/Dot.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Kernels.h"

#include <cstdio>

using namespace swp;

int main() {
  Ddg Loop = motivatingLoop();
  std::printf("=== The motivating loop (paper Figure 1) ===\n%s\n",
              toDot(Loop).c_str());
  std::printf("T_dep = %d from the critical cycle on %s\n\n",
              recurrenceMii(Loop),
              Loop.node(criticalCycleNodes(Loop)[0]).Name.c_str());

  const MachineModel Machines[] = {exampleCleanMachine(),
                                   exampleNonPipelinedMachine(),
                                   exampleHazardMachine()};
  for (const MachineModel &Machine : Machines) {
    std::printf("=== Machine '%s' ===\n", Machine.name().c_str());
    for (int R = 0; R < Machine.numTypes(); ++R)
      std::printf("%s x%d:\n%s", Machine.type(R).Name.c_str(),
                  Machine.type(R).Count,
                  Machine.type(R).Table.render().c_str());
    SchedulerResult Result = scheduleLoop(Loop, Machine);
    if (!Result.found()) {
      std::printf("no schedule found\n\n");
      continue;
    }
    std::printf("T_res = %d, rate-optimal II = %d%s\n", Result.TRes,
                Result.Schedule.T,
                Result.ProvenRateOptimal ? " (proven)" : "");
    std::printf("%s", Result.Schedule.renderTka().c_str());
    std::printf("%s", Result.Schedule.renderPatternUsage(Loop, Machine).c_str());
    // Circular arcs of the FP type when it needed coloring.
    std::vector<int> FpOps = Loop.nodesOfClass(0);
    std::vector<int> Offsets, Mapping;
    for (int Op : FpOps) {
      Offsets.push_back(Result.Schedule.offset(Op));
      Mapping.push_back(Result.Schedule.hasMapping()
                            ? Result.Schedule.Mapping[static_cast<size_t>(Op)]
                            : 0);
    }
    std::printf("%s\n",
                renderArcs(Loop, Machine, 0, Result.Schedule.T, Offsets,
                           Mapping)
                    .c_str());
  }
  return 0;
}
