//===- quickstart.cpp - Five-minute tour of the swp API -------------------===//
//
// Build a loop DDG, describe a machine with structural hazards, ask the
// unified ILP scheduler for a rate-optimal schedule + mapping, verify it,
// and print the kernel.
//
// Run:  ./quickstart
//
//===----------------------------------------------------------------------===//

#include "swp/core/Driver.h"
#include "swp/core/KernelExpander.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/machine/MachineModel.h"

#include <cstdio>

using namespace swp;

int main() {
  // A machine with one non-pipelined multiplier (occupied 2 cycles per op)
  // and one clean 2-stage load/store pipeline.
  MachineModel Machine("demo");
  int Mul = Machine.addFuType("MUL", 1, ReservationTable::nonPipelined(2));
  int Lsu = Machine.addFuType("LSU", 1, ReservationTable::cleanPipelined(2));

  // The loop  s = s * a[i]  (a running product):
  //   ld   -> mul ; mul -> mul (loop-carried, distance 1).
  Ddg Loop("running-product");
  int Ld = Loop.addNode("ld", Lsu, /*Latency=*/2);
  int Mu = Loop.addNode("mul", Mul, /*Latency=*/2);
  int Mu2 = Loop.addNode("mul2", Mul, /*Latency=*/2); // An extra multiply.
  Loop.addEdge(Ld, Mu, 0);
  Loop.addEdge(Mu, Mu, 1);
  Loop.addEdge(Mu, Mu2, 0);

  std::printf("T_dep = %d (recurrence bound), T_res = %d (resource bound)\n",
              recurrenceMii(Loop), Machine.resourceMii(Loop));

  // Rate-optimal scheduling + mapping (the PLDI '95 unified ILP).
  SchedulerResult Result = scheduleLoop(Loop, Machine);
  if (!Result.found()) {
    std::printf("no schedule found\n");
    return 1;
  }
  std::printf("rate-optimal II = %d (proven: %s)\n", Result.Schedule.T,
              Result.ProvenRateOptimal ? "yes" : "no");

  // Every schedule is independently checkable.
  VerifyResult V = verifySchedule(Loop, Machine, Result.Schedule);
  std::printf("verifier: %s\n", V.Ok ? "OK" : V.Error.c_str());

  // The T = T*K + A'*[0..T-1]' decomposition and the software pipeline.
  std::printf("\n%s\n", Result.Schedule.renderTka().c_str());
  std::printf("%s\n",
              renderOverlappedIterations(Loop, Result.Schedule, 4).c_str());
  return V.Ok ? 0 : 1;
}
