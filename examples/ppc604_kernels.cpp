//===- ppc604_kernels.cpp - Classic kernels on the PPC604-like machine ----===//
//
// Schedules every classic kernel (livermore / linpack style) on the
// PPC604-like machine, comparing the rate-optimal ILP against the IMS
// heuristic, and prints one software pipeline in full.
//
// Run:  ./ppc604_kernels [kernel-name]
//
//===----------------------------------------------------------------------===//

#include "swp/core/Driver.h"
#include "swp/core/KernelExpander.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/support/TextTable.h"
#include "swp/workload/Kernels.h"

#include <cstdio>
#include <cstring>

using namespace swp;

int main(int Argc, char **Argv) {
  MachineModel Machine = ppc604Like();
  const char *Pick = Argc > 1 ? Argv[1] : "liv5-tridiag";

  TextTable Table;
  Table.setHeader({"kernel", "N", "T_dep", "T_res", "II(ILP)", "II(IMS)",
                   "optimal?"});
  for (const Ddg &G : classicKernels()) {
    SchedulerResult Ilp = scheduleLoop(G, Machine);
    ImsResult Ims = iterativeModuloSchedule(G, Machine);
    Table.addRow({G.name(), std::to_string(G.numNodes()),
                  std::to_string(Ilp.TDep), std::to_string(Ilp.TRes),
                  Ilp.found() ? std::to_string(Ilp.Schedule.T) : "-",
                  Ims.found() ? std::to_string(Ims.Schedule.T) : "-",
                  Ilp.ProvenRateOptimal ? "proven" : "censored"});
  }
  std::printf("%s\n", Table.render().c_str());

  for (const Ddg &G : classicKernels()) {
    if (std::strcmp(G.name().c_str(), Pick) != 0)
      continue;
    SchedulerResult R = scheduleLoop(G, Machine);
    if (!R.found())
      break;
    std::printf("=== %s: software pipeline at II = %d ===\n",
                G.name().c_str(), R.Schedule.T);
    std::printf("%s\n", R.Schedule.renderTka().c_str());
    std::printf("%s\n",
                renderOverlappedIterations(G, R.Schedule, 4).c_str());
  }
  return 0;
}
